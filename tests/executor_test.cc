// Tests for plan execution: result modes, ordering, duplicate
// elimination, measurement discipline.
#include <gtest/gtest.h>

#include <memory>

#include "compiler/executor.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  return options;
}

struct ExecFixture {
  Database db;
  DomTree tree;
  ImportedDocument doc;

  ExecFixture() : db(SmallDb()), tree(db.tags()) {
    RandomTreeOptions tree_options;
    tree_options.node_count = 500;
    tree_options.tag_alphabet = 3;
    tree = MakeRandomTree(tree_options, 601, db.tags());
    RandomClusteringPolicy policy(448, 3);
    doc = *db.Import(tree, &policy);
  }
};

TEST(ExecutorTest, NodeModeIsSortedAndDistinct) {
  ExecFixture f;
  auto path = ParsePath("//t0//t1", f.db.tags());
  ASSERT_TRUE(path.ok());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    exec.collect_nodes = true;
    auto result = ExecutePath(&f.db, f.doc, *path, exec);
    ASSERT_TRUE(result.ok());
    for (std::size_t i = 1; i < result->nodes.size(); ++i) {
      EXPECT_LT(result->nodes[i - 1].order, result->nodes[i].order)
          << PlanKindName(kind);
    }
    EXPECT_EQ(result->count, result->nodes.size());
  }
}

TEST(ExecutorTest, SimplePlanDuplicatesAreEliminated) {
  // //t0//t1 produces duplicates in the raw Unnest-Map stream whenever
  // t0 contexts nest; the executor's final dedup must remove them.
  Database db(SmallDb());
  auto tree = ParseXml(
      "<t0><t0><t1/></t0><t1/></t0>", db.tags());
  ASSERT_TRUE(tree.ok());
  SubtreeClusteringPolicy policy(448);
  auto doc = db.Import(*tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto path = ParsePath("//t0//t1", db.tags());
  ASSERT_TRUE(path.ok());
  const auto expected = OracleEvaluate(*tree, *path, tree->root());
  ASSERT_EQ(expected.size(), 2u);
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kSimple;
  auto result = ExecutePath(&db, *doc, *path, exec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 2u);
}

TEST(ExecutorTest, CountModeSumsOperands) {
  ExecFixture f;
  auto query = ParseQuery("count(//t0)+count(//t1)", f.db.tags());
  ASSERT_TRUE(query.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  auto result = ExecuteQuery(&f.db, f.doc, *query, exec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, OracleCount(f.tree, *query, f.tree.root()));
  EXPECT_TRUE(result->nodes.empty());
}

TEST(ExecutorTest, ExistsEarlyStopLeavesNoPrefetchInFlight) {
  // exists() stops pulling after the first hit, abandoning whatever the
  // elevator still has queued (XSchedule) or speculated (XScan). The
  // executor must drain those before returning, or the next cold start
  // trips ResetTimeline's no-requests-in-flight check.
  ExecFixture f;
  auto query = ParseQuery("exists(//t1)", f.db.tags());
  ASSERT_TRUE(query.ok());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    exec.plan.use_summary = false;  // force navigation, not the synopsis
    auto result = ExecuteQuery(&f.db, f.doc, *query, exec);
    ASSERT_TRUE(result.ok()) << PlanKindName(kind);
    EXPECT_EQ(result->count, 1u) << PlanKindName(kind);
    EXPECT_FALSE(f.db.buffer()->HasPrefetchInFlight()) << PlanKindName(kind);
    // The database must be reusable: a cold-start run resets the
    // timeline, which asserts that nothing is in flight.
    ExecuteOptions cold;
    cold.plan.kind = kind;
    cold.cold_start = true;
    auto again = ExecuteQuery(&f.db, f.doc, *query, cold);
    ASSERT_TRUE(again.ok()) << PlanKindName(kind);
  }
}

TEST(ExecutorTest, ColdStartResetsMeasurement) {
  ExecFixture f;
  auto path = ParsePath("//t1", f.db.tags());
  ASSERT_TRUE(path.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXScan;
  auto first = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(first.ok());
  auto second = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(second.ok());
  // Deterministic repeat: identical simulated time and I/O counters.
  EXPECT_EQ(first->total_time, second->total_time);
  EXPECT_EQ(first->metrics.disk_reads, second->metrics.disk_reads);
  EXPECT_GT(first->metrics.buffer_misses, 0u);  // buffer really was cold
}

TEST(ExecutorTest, WarmRunIsFasterWithoutColdStart) {
  ExecFixture f;
  auto path = ParsePath("//t1", f.db.tags());
  ASSERT_TRUE(path.ok());
  ExecuteOptions cold;
  cold.plan.kind = PlanKind::kXSchedule;
  auto cold_run = ExecutePath(&f.db, f.doc, *path, cold);
  ASSERT_TRUE(cold_run.ok());

  // Second run without reset: pages are resident. Results report the
  // run's own window, so the warm numbers compare directly.
  ExecuteOptions warm = cold;
  warm.cold_start = false;
  auto warm_run = ExecutePath(&f.db, f.doc, *path, warm);
  ASSERT_TRUE(warm_run.ok());
  EXPECT_LT(warm_run->total_time, cold_run->total_time);
  EXPECT_LT(warm_run->metrics.disk_reads, cold_run->metrics.disk_reads);
}

TEST(ExecutorTest, CpuNeverExceedsTotal) {
  ExecFixture f;
  auto path = ParsePath("//t2/ancestor::t0", f.db.tags());
  ASSERT_TRUE(path.ok());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    auto result = ExecutePath(&f.db, f.doc, *path, exec);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->cpu_time, result->total_time);
    EXPECT_GT(result->cpu_time, 0u);
    EXPECT_GE(result->cpu_fraction(), 0.0);
    EXPECT_LE(result->cpu_fraction(), 1.0);
  }
}

TEST(ExecutorTest, RelativePathRequiresContexts) {
  ExecFixture f;
  auto path = ParsePath("t1/t2", f.db.tags());
  ASSERT_TRUE(path.ok());
  ExecuteOptions exec;
  EXPECT_FALSE(ExecutePath(&f.db, f.doc, *path, exec).ok());
  exec.contexts.push_back(LogicalNode{f.doc.root, 0, f.doc.root_order});
  EXPECT_TRUE(ExecutePath(&f.db, f.doc, *path, exec).ok());
}

TEST(ExecutorTest, EmptyQueryRejected) {
  ExecFixture f;
  PathQuery query;
  EXPECT_FALSE(ExecuteQuery(&f.db, f.doc, query, {}).ok());
}

TEST(ExecutorTest, MetricsExposeTheMechanism) {
  ExecFixture f;
  auto path = ParsePath("//t1", f.db.tags());
  ASSERT_TRUE(path.ok());

  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kSimple;
  auto simple = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(simple.ok());
  exec.plan.kind = PlanKind::kXSchedule;
  auto xsched = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(xsched.ok());
  exec.plan.kind = PlanKind::kXScan;
  auto xscan = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(xscan.ok());

  // Simple traverses inter-cluster edges itself; the pooled plans do not.
  EXPECT_GT(simple->metrics.inter_cluster_hops, 0u);
  EXPECT_EQ(xsched->metrics.inter_cluster_hops, 0u);
  // XSchedule uses asynchronous requests; Simple never does.
  EXPECT_GT(xsched->metrics.async_requests, 0u);
  EXPECT_EQ(simple->metrics.async_requests, 0u);
  // XScan reads every page exactly once, almost fully sequential.
  EXPECT_EQ(xscan->metrics.disk_reads, f.doc.page_count());
  EXPECT_GT(xscan->metrics.speculative_instances, 0u);
}

}  // namespace
}  // namespace navpath
