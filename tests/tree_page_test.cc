// Unit tests for the on-page record format.
#include <gtest/gtest.h>

#include <vector>

#include "store/tree_page.h"

namespace navpath {
namespace {

constexpr std::size_t kPage = 1024;

struct PageFixture {
  std::vector<std::byte> bytes;
  TreePage page;

  PageFixture() : bytes(kPage), page(bytes.data(), kPage) {
    TreePage::Initialize(bytes.data(), kPage);
  }
};

TEST(TreePageTest, FreshPageIsEmpty) {
  PageFixture f;
  EXPECT_EQ(f.page.slot_count(), 0u);
  EXPECT_EQ(f.page.FreeBytes(), kPage - TreePage::kHeaderBytes);
}

TEST(TreePageTest, CoreRecordRoundTrip) {
  PageFixture f;
  auto slot = f.page.AddCoreRecord(17, 42, "hello");
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(f.page.KindOf(*slot), RecordKind::kCore);
  EXPECT_EQ(f.page.TagOf(*slot), 17u);
  EXPECT_EQ(f.page.OrderOf(*slot), 42u);
  EXPECT_EQ(f.page.TextOf(*slot), "hello");
  EXPECT_EQ(f.page.ParentOf(*slot), kInvalidSlot);
}

TEST(TreePageTest, BorderRecordRoundTrip) {
  PageFixture f;
  auto slot = f.page.AddBorderRecord(RecordKind::kBorderDown);
  ASSERT_TRUE(slot.ok());
  EXPECT_TRUE(f.page.IsBorder(*slot));
  const NodeID partner{99, 3};
  f.page.SetPartner(*slot, partner);
  EXPECT_EQ(f.page.PartnerOf(*slot), partner);
  f.page.SetLastChild(*slot, 7);
  EXPECT_EQ(f.page.LastChildOf(*slot), 7u);
}

TEST(TreePageTest, LinkFields) {
  PageFixture f;
  auto a = f.page.AddCoreRecord(1, 0, "");
  auto b = f.page.AddCoreRecord(2, 1, "");
  ASSERT_TRUE(a.ok() && b.ok());
  f.page.SetFirstChild(*a, *b);
  f.page.SetParent(*b, *a);
  f.page.SetNextSibling(*b, kInvalidSlot);
  EXPECT_EQ(f.page.FirstChildOf(*a), *b);
  EXPECT_EQ(f.page.ParentOf(*b), *a);
}

TEST(TreePageTest, SpaceAccountingIsExact) {
  PageFixture f;
  const std::size_t before = f.page.FreeBytes();
  ASSERT_TRUE(f.page.AddCoreRecord(1, 0, "abcd").ok());
  EXPECT_EQ(f.page.FreeBytes(), before - TreePage::CoreRecordSpace(4));
  const std::size_t mid = f.page.FreeBytes();
  ASSERT_TRUE(f.page.AddBorderRecord(RecordKind::kBorderUp).ok());
  EXPECT_EQ(f.page.FreeBytes(), mid - TreePage::BorderRecordSpace());
}

TEST(TreePageTest, FillsUntilResourceExhausted) {
  PageFixture f;
  int added = 0;
  for (;;) {
    auto slot = f.page.AddCoreRecord(1, added, "0123456789");
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsResourceExhausted());
      break;
    }
    ++added;
  }
  const int expected = static_cast<int>(
      (kPage - TreePage::kHeaderBytes) / TreePage::CoreRecordSpace(10));
  EXPECT_EQ(added, expected);
  // Records and slot directory never overlap: every record readable.
  for (SlotId s = 0; s < f.page.slot_count(); ++s) {
    EXPECT_EQ(f.page.TextOf(s), "0123456789");
    EXPECT_EQ(f.page.OrderOf(s), static_cast<std::uint64_t>(s));
  }
}

TEST(TreePageTest, ValidateAcceptsConsistentPage) {
  PageFixture f;
  auto up = f.page.AddBorderRecord(RecordKind::kBorderUp);
  auto core = f.page.AddCoreRecord(1, 0, "x");
  ASSERT_TRUE(up.ok() && core.ok());
  f.page.SetPartner(*up, NodeID{1, 0});
  f.page.SetFirstChild(*up, *core);
  f.page.SetLastChild(*up, *core);
  f.page.SetParent(*core, *up);
  f.page.SetNextSibling(*core, *up);
  f.page.SetPrevSibling(*core, *up);
  EXPECT_TRUE(f.page.Validate().ok());
}

TEST(TreePageTest, ValidateRejectsDanglingLink) {
  PageFixture f;
  auto core = f.page.AddCoreRecord(1, 0, "x");
  ASSERT_TRUE(core.ok());
  f.page.SetFirstChild(*core, 55);  // out of range
  EXPECT_FALSE(f.page.Validate().ok());
}

TEST(TreePageTest, ValidateRejectsBorderWithoutPartner) {
  PageFixture f;
  ASSERT_TRUE(f.page.AddBorderRecord(RecordKind::kBorderDown).ok());
  EXPECT_FALSE(f.page.Validate().ok());
}

}  // namespace
}  // namespace navpath
