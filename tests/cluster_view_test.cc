// White-box tests for AxisCursor's intra-cluster enumeration and the
// per-axis resume semantics at border records (the heart of Sec. 5.3.2's
// "continue a partially evaluated step inside the new cluster").
#include <gtest/gtest.h>

#include <vector>

#include "store/cluster_view.h"

namespace navpath {
namespace {

// Fragment layout built by the fixture (one page):
//
//   up(U) ─ chain ─► c1 ─ bd ─ c2 ─ (terminates at U)
//                    │
//                    g1 (child of c1)
//
// i.e. an up-border U whose children are c1, a down-border bd, and c2,
// as the materializer produces for a continuation or multi-child
// fragment; c1 has one local child g1.
struct PageFixture {
  std::vector<std::byte> bytes;
  SimClock clock;
  Metrics metrics;
  CpuCostModel costs;
  TreePage page;
  SlotId up, c1, bd, c2, g1;

  PageFixture() : bytes(512), page(bytes.data(), 512) {
    TreePage::Initialize(bytes.data(), 512);
    up = *page.AddBorderRecord(RecordKind::kBorderUp);
    c1 = *page.AddCoreRecord(10, 1, "");
    bd = *page.AddBorderRecord(RecordKind::kBorderDown);
    c2 = *page.AddCoreRecord(11, 5, "");
    g1 = *page.AddCoreRecord(12, 2, "");
    page.SetPartner(up, NodeID{7, 0});
    page.SetPartner(bd, NodeID{8, 0});

    page.SetFirstChild(up, c1);
    page.SetLastChild(up, c2);
    page.SetParent(c1, up);
    page.SetParent(bd, up);
    page.SetParent(c2, up);
    page.SetPrevSibling(c1, up);
    page.SetNextSibling(c1, bd);
    page.SetPrevSibling(bd, c1);
    page.SetNextSibling(bd, c2);
    page.SetPrevSibling(c2, bd);
    page.SetNextSibling(c2, up);

    page.SetFirstChild(c1, g1);
    page.SetParent(g1, c1);
  }

  ClusterView View() {
    return ClusterView(bytes.data(), 512, /*page_id=*/3, &clock, &costs,
                       &metrics);
  }

  std::vector<std::pair<SlotId, bool>> Collect(Axis axis, SlotId origin) {
    AxisCursor cursor(View(), axis, origin);
    std::vector<std::pair<SlotId, bool>> out;
    NavEntry entry;
    while (cursor.Next(&entry)) out.emplace_back(entry.slot, entry.crossing);
    return out;
  }
};

using Entry = std::pair<SlotId, bool>;

TEST(AxisCursorTest, ChildFromCore) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kChild, f.c1),
            (std::vector<Entry>{{f.g1, false}}));
  EXPECT_TRUE(f.Collect(Axis::kChild, f.c2).empty());
}

TEST(AxisCursorTest, ChildResumesFromUpBorder) {
  PageFixture f;
  // A child-step crossing arrived at U: its children are the
  // continuation, the down-border is a further crossing, and the chain
  // terminal (U itself) is not emitted.
  EXPECT_EQ(f.Collect(Axis::kChild, f.up),
            (std::vector<Entry>{{f.c1, false}, {f.bd, true}, {f.c2, false}}));
}

TEST(AxisCursorTest, ChildFromDownBorderIsEmpty) {
  PageFixture f;
  // Speculative seed combination that cannot occur as a real resume.
  EXPECT_TRUE(f.Collect(Axis::kChild, f.bd).empty());
}

TEST(AxisCursorTest, SelfOnlyFromCore) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kSelf, f.c1),
            (std::vector<Entry>{{f.c1, false}}));
  EXPECT_TRUE(f.Collect(Axis::kSelf, f.up).empty());
}

TEST(AxisCursorTest, DescendantFromCoreStaysBelow) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kDescendant, f.c1),
            (std::vector<Entry>{{f.g1, false}}));
}

TEST(AxisCursorTest, DescendantResumesFromUpBorder) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kDescendant, f.up),
            (std::vector<Entry>{{f.c1, false},
                                {f.g1, false},
                                {f.bd, true},
                                {f.c2, false}}));
  EXPECT_TRUE(f.Collect(Axis::kDescendant, f.bd).empty());
}

TEST(AxisCursorTest, DescendantOrSelfIncludesOriginOnlyForCores) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kDescendantOrSelf, f.c1),
            (std::vector<Entry>{{f.c1, false}, {f.g1, false}}));
  EXPECT_EQ(f.Collect(Axis::kDescendantOrSelf, f.up).size(), 4u);
}

TEST(AxisCursorTest, ParentCrossesAtFragmentRoot) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kParent, f.g1),
            (std::vector<Entry>{{f.c1, false}}));
  EXPECT_EQ(f.Collect(Axis::kParent, f.c1),
            (std::vector<Entry>{{f.up, true}}));
  // Resume (down-border origin): physical parent of the down-border.
  EXPECT_EQ(f.Collect(Axis::kParent, f.bd),
            (std::vector<Entry>{{f.up, true}}));
  EXPECT_TRUE(f.Collect(Axis::kParent, f.up).empty());
}

TEST(AxisCursorTest, AncestorWalksUpAndCrosses) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kAncestor, f.g1),
            (std::vector<Entry>{{f.c1, false}, {f.up, true}}));
  EXPECT_EQ(f.Collect(Axis::kAncestorOrSelf, f.g1),
            (std::vector<Entry>{{f.g1, false},
                                {f.c1, false},
                                {f.up, true}}));
}

TEST(AxisCursorTest, FollowingSiblingWalksChainAndCrossesAtEnds) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kFollowingSibling, f.c1),
            (std::vector<Entry>{{f.bd, true}, {f.c2, false}, {f.up, true}}));
  // Resume at the up-border (a sibling crossing arrived): children are
  // the chain continuation, terminal not emitted.
  EXPECT_EQ(f.Collect(Axis::kFollowingSibling, f.up),
            (std::vector<Entry>{{f.c1, false}, {f.bd, true}, {f.c2, false}}));
  // Resume at a down-border (prev-chain crossing arrived from the child
  // fragment): continue with the local next sibling.
  EXPECT_EQ(f.Collect(Axis::kFollowingSibling, f.bd),
            (std::vector<Entry>{{f.c2, false}, {f.up, true}}));
}

TEST(AxisCursorTest, PrecedingSiblingReversesChain) {
  PageFixture f;
  EXPECT_EQ(f.Collect(Axis::kPrecedingSibling, f.c2),
            (std::vector<Entry>{{f.bd, true}, {f.c1, false}, {f.up, true}}));
  // Resume at the up-border: children in reverse document order.
  EXPECT_EQ(f.Collect(Axis::kPrecedingSibling, f.up),
            (std::vector<Entry>{{f.c2, false}, {f.bd, true}, {f.c1, false}}));
  EXPECT_EQ(f.Collect(Axis::kPrecedingSibling, f.bd),
            (std::vector<Entry>{{f.c1, false}, {f.up, true}}));
  EXPECT_TRUE(f.Collect(Axis::kPrecedingSibling, f.g1).empty());
}

TEST(AxisCursorTest, ChargesNavigationCosts) {
  PageFixture f;
  const SimTime before = f.clock.now();
  f.Collect(Axis::kDescendant, f.up);
  EXPECT_GT(f.clock.now(), before);
  EXPECT_GT(f.metrics.intra_cluster_hops, 0u);
}

TEST(AxisCursorTest, RebindKeepsPosition) {
  PageFixture f;
  AxisCursor cursor(f.View(), Axis::kChild, f.up);
  NavEntry entry;
  ASSERT_TRUE(cursor.Next(&entry));
  EXPECT_EQ(entry.slot, f.c1);
  // Simulate the page moving to another frame: rebind to a fresh view.
  cursor.Rebind(f.View());
  ASSERT_TRUE(cursor.Next(&entry));
  EXPECT_EQ(entry.slot, f.bd);
  EXPECT_TRUE(entry.crossing);
}

}  // namespace
}  // namespace navpath
