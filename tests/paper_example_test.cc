// Reproduces the paper's running example (Figs. 2/3/5/6/8, Tab. 1,
// Examples 5-7) on a hand-built physical layout.
//
// Logical tree:            r(R)
//                         /  |  (backslash)
//                    a2(A) c2(A) d4(C)
//                      |     |     |
//                    a3(B) c4(B) b5(B)
//
// Physical clusters (one per page, disk order a, b, c, d):
//   page 0 "a": [up-border] -> a2 -> a3
//   page 1 "b": [up-border] -> b5
//   page 2 "c": [up-border] -> c2 -> c4
//   page 3 "d": r with down-borders to a and c, core d4 with a
//               down-border to b.
//
// Query /A//B from the root. Expected results: a3 and c4.
//   * XSchedule visits d, then a and c — never b (Example 6: d4 fails the
//     node test A, so the crossing below it is never produced).
//   * XScan scans a, b, c, d in physical order; the context cluster d
//     comes LAST, so results in a and c are found speculatively as
//     left-incomplete instances and merged when d arrives (Example 7).
#include <gtest/gtest.h>

#include "algebra/path_instance.h"
#include "compiler/executor.h"
#include "store/tree_page.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

struct PaperExample {
  Database db;
  ImportedDocument doc;
  std::uint64_t order_a3 = 2;
  std::uint64_t order_c4 = 4;

  static DatabaseOptions Options() {
    DatabaseOptions options;
    options.page_size = 512;
    options.buffer_pages = 16;
    return options;
  }

  PaperExample() : db(Options()) {
    const TagId tag_r = db.tags()->Intern("R");
    const TagId tag_a = db.tags()->Intern("A");
    const TagId tag_b = db.tags()->Intern("B");
    const TagId tag_c = db.tags()->Intern("C");

    std::vector<std::vector<std::byte>> pages(4);
    std::vector<TreePage> views;
    for (auto& bytes : pages) {
      bytes.resize(512);
      TreePage::Initialize(bytes.data(), 512);
      views.emplace_back(bytes.data(), 512);
    }

    // Fragment pages a(0), b(1), c(2): up-border + chain of cores.
    auto make_fragment = [&](PageId page, TagId top_tag,
                             std::uint64_t top_order, TagId child_tag,
                             std::uint64_t child_order,
                             bool with_child) -> SlotId {
      TreePage& v = views[page];
      const SlotId up = *v.AddBorderRecord(RecordKind::kBorderUp);
      const SlotId top = *v.AddCoreRecord(top_tag, top_order, "");
      v.SetFirstChild(up, top);
      v.SetLastChild(up, top);
      v.SetParent(top, up);
      v.SetPrevSibling(top, up);
      v.SetNextSibling(top, up);
      if (with_child) {
        const SlotId child = *v.AddCoreRecord(child_tag, child_order, "");
        v.SetFirstChild(top, child);
        v.SetParent(child, top);
      }
      return up;
    };
    const SlotId up_a = make_fragment(0, tag_a, 1, tag_b, 2, true);
    const SlotId up_b = make_fragment(1, tag_b, 6, 0, 0, false);
    const SlotId up_c = make_fragment(2, tag_a, 3, tag_b, 4, true);

    // Page d(3): root with down-borders to a and c, then core d4 with a
    // down-border to b.
    TreePage& d = views[3];
    const SlotId root = *d.AddCoreRecord(tag_r, 0, "");
    const SlotId bd_a = *d.AddBorderRecord(RecordKind::kBorderDown);
    const SlotId bd_c = *d.AddBorderRecord(RecordKind::kBorderDown);
    const SlotId d4 = *d.AddCoreRecord(tag_c, 5, "");
    const SlotId bd_b = *d.AddBorderRecord(RecordKind::kBorderDown);
    d.SetFirstChild(root, bd_a);
    d.SetParent(bd_a, root);
    d.SetParent(bd_c, root);
    d.SetParent(d4, root);
    d.SetNextSibling(bd_a, bd_c);
    d.SetPrevSibling(bd_c, bd_a);
    d.SetNextSibling(bd_c, d4);
    d.SetPrevSibling(d4, bd_c);
    d.SetFirstChild(d4, bd_b);
    d.SetParent(bd_b, d4);

    d.SetPartner(bd_a, NodeID{0, up_a});
    views[0].SetPartner(up_a, NodeID{3, bd_a});
    d.SetPartner(bd_c, NodeID{2, up_c});
    views[2].SetPartner(up_c, NodeID{3, bd_c});
    d.SetPartner(bd_b, NodeID{1, up_b});
    views[1].SetPartner(up_b, NodeID{3, bd_b});

    for (PageId p = 0; p < 4; ++p) {
      EXPECT_TRUE(views[p].Validate().ok()) << "page " << p;
      const PageId id = db.disk()->AllocatePage();
      EXPECT_EQ(id, p);
      db.disk()->WriteSync(id, pages[p].data()).AbortIfNotOk();
    }

    doc.root = NodeID{3, root};
    doc.root_order = 0;
    doc.first_page = 0;
    doc.last_page = 3;
    doc.core_records = 7;
    doc.border_pairs = 3;
    doc.pages = 4;
  }

  QueryRunResult RunPlan(PlanKind kind) {
    // The paper evaluates /A//B *with context node d1* (the root), i.e.
    // child::A from d1 — a relative path in our API.
    auto path = ParsePath("A//B", db.tags());
    path.status().AbortIfNotOk();
    ExecuteOptions exec;
    exec.plan = PaperPlanOptions(kind);
    exec.contexts.push_back(LogicalNode{doc.root, 0, doc.root_order});
    exec.collect_nodes = true;
    auto result = ExecutePath(&db, doc, *path, exec);
    result.status().AbortIfNotOk();
    return *result;
  }

  static PlanOptions PaperPlanOptions(PlanKind kind) {
    PlanOptions options;
    options.kind = kind;
    options.speculative = false;
    return options;
  }
};

void ExpectPaperResults(const QueryRunResult& result) {
  ASSERT_EQ(result.count, 2u);
  ASSERT_EQ(result.nodes.size(), 2u);
  EXPECT_EQ(result.nodes[0].order, 2u);  // a3
  EXPECT_EQ(result.nodes[1].order, 4u);  // c4
}

TEST(PaperExampleTest, SimplePlanFindsBothResults) {
  PaperExample example;
  ExpectPaperResults(example.RunPlan(PlanKind::kSimple));
}

TEST(PaperExampleTest, XScheduleVisitsOnlyRequiredClusters) {
  // Example 6: clusters d, a, c are accessed; b never is, because d4
  // fails the node test A and so its crossing is never produced.
  PaperExample example;
  ExpectPaperResults(example.RunPlan(PlanKind::kXSchedule));
  const Metrics& metrics = *example.db.metrics();
  EXPECT_EQ(metrics.disk_reads, 3u);  // d, a, c
  EXPECT_FALSE(example.db.buffer()->IsResident(1));
  EXPECT_GE(metrics.async_requests, 2u);  // a and c prefetched
}

TEST(PaperExampleTest, XScanMergesLeftIncompleteInstances) {
  // Example 7: the scan sees clusters a, b, c before the context cluster
  // d; a3/c4 are found speculatively and merged when d arrives.
  PaperExample example;
  ExpectPaperResults(example.RunPlan(PlanKind::kXScan));
  const Metrics& metrics = *example.db.metrics();
  EXPECT_EQ(metrics.disk_reads, 4u);           // full scan
  EXPECT_GT(metrics.speculative_instances, 0u);  // seeds were generated
  EXPECT_EQ(metrics.disk_seq_reads, 3u);       // pages 1,2,3 follow page 0
}

TEST(PaperExampleTest, Table1InstanceTaxonomy) {
  // Tab. 1's classification columns (F/L/R/C) over representative
  // instances for the 2-step path /A//B.
  const NodeID d1{3, 0}, a2{0, 1}, a3{0, 2}, d2{3, 1}, a1{0, 0};

  // No 1: context-only instance: non-full but complete.
  const PathInstance no1 = PathInstance::Context(d1, 0);
  EXPECT_TRUE(no1.complete());
  EXPECT_FALSE(no1.full(2));

  // No 5: d1 -> a2 -> a3: full.
  const PathInstance no5{PathEnd{0, d1, 0, false}, PathEnd{2, a3, 2, false}};
  EXPECT_TRUE(no5.full(2));
  EXPECT_TRUE(no5.left_complete() && no5.right_complete());

  // No 7: d1 -> border d3 while processing step 1: right-incomplete
  // (S_R = r-1 = 0 per the paper's tuple encoding).
  const PathInstance no7{PathEnd{0, d1, 0, false}, PathEnd{0, d2, 0, true}};
  EXPECT_TRUE(no7.left_complete());
  EXPECT_FALSE(no7.right_complete());
  EXPECT_FALSE(no7.complete());
  EXPECT_FALSE(no7.full(2));

  // No 9: "if a1 is reachable at step 1, a3 is a result": left-incomplete,
  // right-complete.
  const PathInstance no9{PathEnd{0, a1, 0, true}, PathEnd{2, a3, 2, false}};
  EXPECT_FALSE(no9.left_complete());
  EXPECT_TRUE(no9.right_complete());
  EXPECT_FALSE(no9.complete());
  EXPECT_FALSE(no9.full(2));

  // Seeds are degenerate left- and right-incomplete instances.
  const PathInstance seed = PathInstance::Seed(a1, 0);
  EXPECT_FALSE(seed.left_complete());
  EXPECT_FALSE(seed.right_complete());
  (void)a2;
}

}  // namespace
}  // namespace navpath
