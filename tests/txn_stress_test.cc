// Randomized mixed-workload stress for the open MVCC write path:
// several concurrent optimistic writers (inserts AND transactional
// deletes, group-committed in batches) race snapshot readers through the
// workload executor, over multiple seeds and staggered open-system
// arrivals. The gates are the invariants the subsystem promises, not
// golden outputs:
//   - //xbid consistency oracle: every reader counts exactly the net
//     inserts of the commits at or before its pinned version;
//   - commit sequence numbers are contiguous (no lost or duplicated
//     publishes under retries);
//   - the manager's abort counter equals the sum of per-writer
//     first-committer losses (every abort is a retry we accounted for);
//   - insert/delete-only commits keep summary-exact versions (zero
//     degrades);
//   - once the run drains, every retired version is reclaimed (the
//     unpin listener leaves no stalled retirees).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "compiler/workload_executor.h"
#include "store/export.h"
#include "tests/test_util.h"
#include "txn/txn.h"
#include "xml/parser.h"

namespace navpath {
namespace {

struct StressFixture {
  Database db;
  ImportedDocument doc;
  std::unique_ptr<TxnManager> mgr;

  StressFixture() : db(Options()) {
    auto parsed = ParseXml(
        "<site><auctions><lot>1</lot><lot>2</lot></auctions>"
        "<people><person>p</person></people></site>",
        db.tags());
    parsed.status().AbortIfNotOk();
    DomTree tree = std::move(*parsed);
    RandomClusteringPolicy policy(Options().page_size - 64, 17);
    doc = *db.Import(tree, &policy);
    mgr = std::make_unique<TxnManager>(&db, &doc);
  }

  static DatabaseOptions Options() {
    DatabaseOptions options;
    options.page_size = 512;
    options.buffer_pages = 64;
    return options;
  }
};

class TxnMixedStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnMixedStress, WritersAndReadersKeepEveryInvariant) {
  StressFixture f;
  Random rng(GetParam());
  const TagId xbid = f.db.tags()->Intern("xbid");

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kReaders = 6;

  WorkloadOptions options;
  options.txn = f.mgr.get();
  options.max_concurrent = 6;
  options.max_writers = 4;
  options.writer_batch = 1 + rng.NextBounded(3);  // exercise group commit
  WorkloadExecutor executor(&f.db, f.doc, options);

  // Build a seeded interleaving of reader and writer arrivals
  // (nondecreasing, as Run()'s open-system admission requires). Every
  // writer inserts <xbid> children under the document root and deletes
  // xbids again — a delete is only emitted once this transaction has
  // inserted at least one more xbid than it deleted, so the victim scan
  // always finds a match (possibly a committed xbid from an earlier
  // writer; either way the net count delta stays
  // writes_applied - deletes_applied).
  struct Slot {
    bool is_writer;
  };
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < kWriters; ++i) slots.push_back({true});
  for (std::size_t i = 0; i < kReaders; ++i) slots.push_back({false});
  for (std::size_t i = slots.size(); i > 1; --i) {
    std::swap(slots[i - 1], slots[rng.NextBounded(i)]);
  }

  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  SimTime arrival = 0;
  std::size_t writer_jobs = 0;
  for (const Slot& slot : slots) {
    arrival += rng.NextBounded(3) * kSimMillisecond / 2;
    if (slot.is_writer) {
      std::vector<WriteOp> ops;
      std::size_t pending = 0;  // own uncommitted xbids, delete headroom
      const std::size_t n_ops = 3 + rng.NextBounded(4);
      for (std::size_t i = 0; i < n_ops; ++i) {
        if (pending > 0 && rng.NextBool(0.35)) {
          ops.push_back(WriteOp{f.doc.root, kInvalidNodeID, xbid, "",
                                {}, WriteOp::Kind::kDelete});
          --pending;
        } else {
          ops.push_back(WriteOp{f.doc.root, kInvalidNodeID, xbid, "x"});
          ++pending;
        }
      }
      ASSERT_TRUE(executor.AddWrite(std::move(ops), arrival).ok());
      ++writer_jobs;
    } else {
      ASSERT_TRUE(executor.Add("//xbid", plan, arrival).ok());
    }
  }
  ASSERT_EQ(writer_jobs, kWriters);

  auto result = executor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every writer must eventually commit: conflicts are plentiful (all
  // writers shadow the root's page) but bounded — a writer can lose the
  // first-committer race at most once per competing commit, far under
  // the retry budget.
  std::vector<std::pair<std::uint64_t, std::int64_t>> deltas;  // seq, net
  std::vector<std::uint64_t> seqs;
  std::uint64_t aborts_total = 0;
  for (const WorkloadQueryResult& q : result->queries) {
    if (!q.is_write) continue;
    ASSERT_TRUE(q.status.ok())
        << "seed " << GetParam() << ": " << q.status.ToString();
    ASSERT_GT(q.commit_seq, 0u);
    EXPECT_FALSE(q.degraded);
    EXPECT_EQ(q.snapshot_seq + 1, q.commit_seq)
        << "committed attempt must be based on the version just below";
    seqs.push_back(q.commit_seq);
    aborts_total += q.aborts;
    deltas.emplace_back(q.commit_seq,
                        static_cast<std::int64_t>(q.writes_applied) -
                            static_cast<std::int64_t>(q.deletes_applied));
  }
  ASSERT_EQ(seqs.size(), kWriters);

  // Contiguous publish order: seqs are exactly {1..kWriters}.
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i + 1) << "seed " << GetParam();
  }

  // Abort accounting: with every writer committed, the manager's abort
  // counter is exactly the optimistic attempts that lost the race.
  EXPECT_EQ(f.mgr->commits(), kWriters);
  EXPECT_EQ(f.mgr->aborts(), aborts_total) << "seed " << GetParam();

  // //xbid oracle: each reader's count is the prefix sum of net deltas
  // for commits at or before its snapshot. A torn read, a phantom from a
  // later commit, or a delete leaking across versions all break this.
  for (const WorkloadQueryResult& q : result->queries) {
    if (q.is_write) continue;
    ASSERT_TRUE(q.status.ok())
        << "seed " << GetParam() << ": " << q.status.ToString();
    std::int64_t expected = 0;
    for (const auto& [seq, delta] : deltas) {
      if (seq <= q.snapshot_seq) expected += delta;
    }
    EXPECT_EQ(static_cast<std::int64_t>(q.count), expected)
        << "seed " << GetParam() << " snapshot seq " << q.snapshot_seq;
  }

  // Insert/delete-only transactions never cost a version its summary.
  EXPECT_EQ(f.mgr->summary_degrades(), 0u) << "seed " << GetParam();

  // The final document agrees with the sum of all committed deltas.
  std::int64_t net_total = 0;
  for (const auto& [seq, delta] : deltas) net_total += delta;
  auto snap = f.mgr->OpenSnapshot();
  ExportOptions through;
  through.translator = snap.get();
  auto exported = ExportSubtree(&f.db, snap->doc().root, through);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  std::int64_t in_doc = 0;
  for (std::size_t pos = exported->find("<xbid>");
       pos != std::string::npos; pos = exported->find("<xbid>", pos + 1)) {
    ++in_doc;
  }
  EXPECT_EQ(in_doc, net_total) << "seed " << GetParam();
  snap.reset();

  // Drained: no reader or writer left, so reclamation owes nothing.
  EXPECT_EQ(f.mgr->retired_pending(), 0u) << "seed " << GetParam();
  EXPECT_EQ(f.mgr->versions_reclaimed(), f.mgr->versions_retired());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnMixedStress,
                         ::testing::Values(7u, 99u, 2026u, 424242u,
                                           8675309u));

}  // namespace
}  // namespace navpath
