// Property tests for the physical algebra: on random documents and
// clusterings, every plan kind must produce exactly the oracle's result
// set — including speculative XSchedule and fallback mode.
#include <gtest/gtest.h>

#include <memory>

#include "compiler/executor.h"
#include "tests/test_util.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

struct PlanVariant {
  PlanKind kind;
  bool speculative;
  std::size_t s_budget;  // 0 = unlimited
  const char* label;
};

const PlanVariant kVariants[] = {
    {PlanKind::kSimple, false, 0, "simple"},
    {PlanKind::kXSchedule, false, 0, "xschedule"},
    {PlanKind::kXSchedule, true, 0, "xschedule_spec"},
    {PlanKind::kXScan, false, 0, "xscan"},
    {PlanKind::kXScan, false, 5, "xscan_fallback"},
    {PlanKind::kXSchedule, true, 5, "xschedule_spec_fallback"},
};

struct AlgebraCase {
  std::uint64_t seed;
  std::size_t nodes;
  std::string policy;
  std::string path;
};

class PlanEquivalence : public ::testing::TestWithParam<AlgebraCase> {};

TEST_P(PlanEquivalence, AllPlansMatchOracle) {
  const AlgebraCase& param = GetParam();
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = param.nodes;
  tree_options.tag_alphabet = 3;
  const DomTree tree = MakeRandomTree(tree_options, param.seed, db.tags());

  std::unique_ptr<ClusteringPolicy> policy;
  if (param.policy == "subtree") {
    policy = std::make_unique<SubtreeClusteringPolicy>(448);
  } else {
    policy = std::make_unique<RandomClusteringPolicy>(448, param.seed + 3);
  }
  auto doc = db.Import(tree, policy.get());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  auto path = ParsePath(param.path, db.tags());
  ASSERT_TRUE(path.ok()) << path.status().ToString();

  const std::vector<DomNodeId> expected =
      OracleEvaluate(tree, *path, tree.root());
  std::vector<std::uint64_t> expected_orders;
  expected_orders.reserve(expected.size());
  for (const DomNodeId n : expected) {
    expected_orders.push_back(tree.node(n).order);
  }

  for (const PlanVariant& variant : kVariants) {
    ExecuteOptions exec;
    exec.plan.kind = variant.kind;
    exec.plan.speculative = variant.speculative;
    exec.plan.s_budget = variant.s_budget;
    exec.collect_nodes = true;
    auto result = ExecutePath(&db, *doc, *path, exec);
    ASSERT_TRUE(result.ok())
        << variant.label << ": " << result.status().ToString();
    std::vector<std::uint64_t> got;
    got.reserve(result->nodes.size());
    for (const auto& n : result->nodes) got.push_back(n.order);
    ASSERT_EQ(got, expected_orders)
        << "plan " << variant.label << " path " << param.path << " seed "
        << param.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PathsAndTrees, PlanEquivalence,
    ::testing::Values(
        AlgebraCase{31, 400, "subtree", "/t0/t1"},
        AlgebraCase{32, 400, "random", "//t1"},
        AlgebraCase{33, 600, "subtree", "//t0//t1"},
        AlgebraCase{34, 600, "random", "/t0//t2/t1"},
        AlgebraCase{35, 500, "subtree", "//t2/.."},
        AlgebraCase{36, 500, "random", "//t1/following-sibling::t2"},
        AlgebraCase{37, 500, "subtree", "//t2/preceding-sibling::*"},
        AlgebraCase{38, 500, "random", "//t1/ancestor::t0"},
        AlgebraCase{39, 300, "random", "//t0/ancestor-or-self::*"},
        AlgebraCase{40, 700, "subtree",
                    "/descendant-or-self::node()/t1/descendant::t2"},
        AlgebraCase{41, 300, "random", "/"},
        AlgebraCase{42, 800, "random", "//t0//t1//t2"},
        AlgebraCase{43, 400, "subtree", "/t9"},  // empty result
        AlgebraCase{44, 650, "random", "//t0/t1/t2"},
        AlgebraCase{45, 500, "random", "//t1/@a0"},
        AlgebraCase{46, 500, "subtree", "//@*"},
        AlgebraCase{47, 400, "random", "//t0/@a1/.."},
        AlgebraCase{48, 400, "subtree",
                    "//t2/attribute::a2/ancestor::t0"},
        AlgebraCase{49, 450, "random", "//t1/following::t2"},
        AlgebraCase{50, 450, "subtree", "//t2/preceding::t0"}),
    [](const ::testing::TestParamInfo<AlgebraCase>& info) {
      return "case_s" + std::to_string(info.param.seed);
    });

TEST(PlanEquivalenceTest, RelativePathsWithManyContexts) {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = 500;
  tree_options.tag_alphabet = 3;
  const DomTree tree = MakeRandomTree(tree_options, 77, db.tags());
  RandomClusteringPolicy policy(448, 5);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto mapping = MapOrderToNodeID(&db, *doc, tree);
  ASSERT_TRUE(mapping.ok());

  auto path = ParsePath("t1//t2", db.tags());
  ASSERT_TRUE(path.ok());

  // Contexts: every t0 node in the document.
  const TagId t0 = *db.tags()->Lookup("t0");
  std::vector<LogicalNode> contexts;
  std::vector<DomNodeId> dom_contexts;
  for (DomNodeId n = 0; n < tree.size(); ++n) {
    if (tree.node(n).tag == t0) {
      dom_contexts.push_back(n);
      contexts.push_back(LogicalNode{mapping->at(tree.node(n).order), t0,
                                     tree.node(n).order});
    }
  }
  ASSERT_GT(contexts.size(), 10u);

  // Oracle: union over contexts, deduped, document order.
  std::set<std::uint64_t> expected;
  for (const DomNodeId ctx : dom_contexts) {
    for (const DomNodeId n : OracleEvaluate(tree, *path, ctx)) {
      expected.insert(tree.node(n).order);
    }
  }

  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ASSERT_TRUE(db.ResetMeasurement().ok());
    PlanOptions plan_options;
    plan_options.kind = kind;
    auto plan = BuildPlan(&db, *doc, *path, contexts, plan_options);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(plan->root()->Open().ok());
    std::set<std::uint64_t> got;
    PathInstance inst;
    for (;;) {
      auto more = plan->root()->Next(&inst);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      got.insert(inst.right.order);
    }
    ASSERT_TRUE(plan->root()->Close().ok());
    EXPECT_EQ(got, expected) << PlanKindName(kind);
  }
}

TEST(FallbackTest, TriggersAndStaysCorrect) {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = 800;
  tree_options.tag_alphabet = 2;
  const DomTree tree = MakeRandomTree(tree_options, 55, db.tags());
  RandomClusteringPolicy policy(448, 9);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto path = ParsePath("//t0//t1", db.tags());
  ASSERT_TRUE(path.ok());
  const auto expected = OracleEvaluate(tree, *path, tree.root());

  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXScan;
  exec.plan.s_budget = 3;  // absurdly small: must trip fallback
  exec.collect_nodes = true;
  auto result = ExecutePath(&db, *doc, *path, exec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->count, expected.size());
  EXPECT_GE(result->metrics.fallback_activations, 1u);
}

TEST(XScheduleTest, SpeculativeModeNeverLosesResults) {
  // Paths that revisit clusters (down then up) exercise the
  // visited-cluster shortcut of speculative XSchedule.
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = 600;
  tree_options.tag_alphabet = 2;
  const DomTree tree = MakeRandomTree(tree_options, 91, db.tags());
  RandomClusteringPolicy policy(448, 13);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto path = ParsePath("//t1/ancestor::t0/t1", db.tags());
  ASSERT_TRUE(path.ok());
  const auto expected = OracleEvaluate(tree, *path, tree.root());

  for (const bool speculative : {false, true}) {
    ExecuteOptions exec;
    exec.plan.kind = PlanKind::kXSchedule;
    exec.plan.speculative = speculative;
    exec.collect_nodes = true;
    auto result = ExecutePath(&db, *doc, *path, exec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->count, expected.size())
        << "speculative=" << speculative;
  }
}

TEST(XScheduleTest, QueueSizeKOneStillCorrect) {
  DatabaseOptions options;
  options.page_size = 512;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = 300;
  const DomTree tree = MakeRandomTree(tree_options, 101, db.tags());
  RandomClusteringPolicy policy(448, 1);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto path = ParsePath("//t0", db.tags());
  ASSERT_TRUE(path.ok());
  const auto expected = OracleEvaluate(tree, *path, tree.root());

  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  exec.plan.queue_k = 1;
  auto result = ExecutePath(&db, *doc, *path, exec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, expected.size());
}

}  // namespace
}  // namespace navpath
