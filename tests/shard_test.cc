// Tests for the path-partitioned sharded store: deterministic
// partitioning, summary-driven routing, cross-shard document-order
// merges byte-identical to the unsharded oracle, K=1 full-workload
// identity with the plain WorkloadExecutor, per-shard fault seeding, and
// the shard-combination validation rules at every entry point.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "benchlib/harness.h"
#include "compiler/workload_executor.h"
#include "serve/server.h"
#include "shard/shard_executor.h"
#include "shard/shard_router.h"
#include "shard/sharded_store.h"
#include "storage/disk.h"
#include "txn/txn.h"

namespace navpath {
namespace {

// A workload mixing single-owner paths, multi-shard fan-outs, count
// aggregates over several operands, an exists probe, and a root query.
const char* const kShardQueries[] = {
    "/site/regions//item",
    "/site/people/person/email",
    "/site//keyword",
    "count(/site/regions//item)",
    "count(/site//description)+count(/site//annotation)+count(/site//email)",
    "exists(/site/catgraph/edge)",
    "/site",
};

std::vector<std::uint64_t> OrdersOf(const std::vector<LogicalNode>& nodes) {
  std::vector<std::uint64_t> orders;
  orders.reserve(nodes.size());
  for (const LogicalNode& node : nodes) orders.push_back(node.order);
  return orders;
}

Result<std::unique_ptr<ShardedStore>> BuildSharded(
    double scale, std::size_t shards, FixtureOptions options = {}) {
  return CreateShardedXMark(scale, shards, options);
}

// --- Fault-seed derivation ------------------------------------------------

TEST(ShardFaultSeedTest, ShardZeroKeepsBaseSeed) {
  EXPECT_EQ(ShardFaultSeed(0, 0), 0u);
  EXPECT_EQ(ShardFaultSeed(42, 0), 42u);
  EXPECT_EQ(ShardFaultSeed(0xdeadbeef, 0), 0xdeadbeefu);
}

TEST(ShardFaultSeedTest, DistinctAndStableAcrossShards) {
  std::set<std::uint64_t> seeds;
  for (std::size_t k = 0; k < 16; ++k) {
    const std::uint64_t seed = ShardFaultSeed(42, k);
    EXPECT_EQ(seed, ShardFaultSeed(42, k)) << "shard " << k;
    EXPECT_TRUE(seeds.insert(seed).second)
        << "shard " << k << " collides with an earlier shard";
  }
  // Different base seeds must not share derived streams.
  EXPECT_NE(ShardFaultSeed(42, 1), ShardFaultSeed(43, 1));
}

// --- Cost-model fan-out estimate ------------------------------------------

TEST(ShardCostModelTest, EstimateShardFanout) {
  const ShardFanoutEstimate single = EstimateShardFanout({100.0}, 50.0, 1.0);
  EXPECT_EQ(single.participants, 1u);
  EXPECT_DOUBLE_EQ(single.parallel_cost, 100.0);
  EXPECT_DOUBLE_EQ(single.serial_cost, 100.0);
  EXPECT_DOUBLE_EQ(single.merge_cost, 0.0);  // width 1: no merge
  EXPECT_DOUBLE_EQ(single.speedup, 1.0);

  const ShardFanoutEstimate fan =
      EstimateShardFanout({100.0, 60.0, 40.0}, 50.0, 0.5);
  EXPECT_EQ(fan.participants, 3u);
  EXPECT_DOUBLE_EQ(fan.parallel_cost, 100.0);  // slowest drive
  EXPECT_DOUBLE_EQ(fan.serial_cost, 200.0);    // one drive pays the sum
  EXPECT_DOUBLE_EQ(fan.merge_cost, 25.0);
  EXPECT_DOUBLE_EQ(fan.speedup, 200.0 / 125.0);
}

// --- Partitioning ---------------------------------------------------------

TEST(ShardedStoreTest, PartitionCoversDocumentAndIsDeterministic) {
  auto store = BuildSharded(0.02, 4);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ((*store)->shard_count(), 4u);
  EXPECT_EQ((*store)->root_tag(), "site");

  const std::vector<ShardUnit>& units = (*store)->units();
  ASSERT_FALSE(units.empty());
  std::set<std::string> tags;
  for (const ShardUnit& unit : units) {
    EXPECT_LT(unit.owner, 4u) << unit.tag;
    EXPECT_GT(unit.weight, 0u) << unit.tag;
    EXPECT_GT(unit.subtrees, 0u) << unit.tag;
    EXPECT_TRUE(tags.insert(unit.tag).second)
        << "duplicate partition unit " << unit.tag;
    const auto owner = (*store)->OwnerOf(unit.tag);
    ASSERT_TRUE(owner.has_value()) << unit.tag;
    EXPECT_EQ(*owner, unit.owner) << unit.tag;
  }
  // XMark's root has exactly these six child groups.
  const std::set<std::string> expected = {"regions",       "categories",
                                          "catgraph",      "people",
                                          "open_auctions", "closed_auctions"};
  EXPECT_EQ(tags, expected);
  EXPECT_FALSE((*store)->OwnerOf("keyword").has_value());

  // Same options => same placement, weight for weight.
  auto again = BuildSharded(0.02, 4);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ((*again)->units().size(), units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ((*again)->units()[i].tag, units[i].tag);
    EXPECT_EQ((*again)->units()[i].owner, units[i].owner);
    EXPECT_EQ((*again)->units()[i].weight, units[i].weight);
    EXPECT_EQ((*again)->units()[i].subtrees, units[i].subtrees);
  }
}

TEST(ShardedStoreTest, SingleShardOwnsEverything) {
  auto store = BuildSharded(0.02, 1);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->shard_count(), 1u);
  for (const ShardUnit& unit : (*store)->units()) {
    EXPECT_EQ(unit.owner, 0u) << unit.tag;
  }
  ASSERT_NE((*store)->summary(0), nullptr);
}

TEST(ShardedStoreTest, RequiresPathSummary) {
  FixtureOptions options;
  options.db.import.build_summary = false;
  auto store = BuildSharded(0.02, 2, options);
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsInvalidArgument())
      << store.status().ToString();
}

// --- Routing --------------------------------------------------------------

TEST(ShardRouterTest, SingleOwnerPathRoutesToOwningShard) {
  auto store = BuildSharded(0.02, 4);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const ShardRouter router(store->get());

  auto route = router.Route("/site/regions//item");
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  EXPECT_FALSE(route->unrouted);
  ASSERT_EQ(route->width(), 1u);
  const auto owner = (*store)->OwnerOf("regions");
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(route->participants[0], *owner);
  EXPECT_EQ(route->root_dup, 0u);
  EXPECT_FALSE(route->root_in_result);
}

TEST(ShardRouterTest, DescendantQueryFansOut) {
  auto store = BuildSharded(0.02, 4);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const ShardRouter router(store->get());

  auto route = router.Route("count(/site//description)");
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  EXPECT_FALSE(route->unrouted);
  EXPECT_GT(route->width(), 1u);
  EXPECT_EQ(route->root_dup, 0u);
  for (const std::size_t k : route->participants) {
    EXPECT_FALSE(route->per_shard[k].paths.empty()) << "shard " << k;
  }
}

TEST(ShardRouterTest, RootQueryReportsReplicationOvercount) {
  auto store = BuildSharded(0.02, 4);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const ShardRouter router(store->get());

  // "/site" selects the root element, which every shard replicates.
  auto route = router.Route("count(/site)");
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  EXPECT_FALSE(route->unrouted);
  EXPECT_EQ(route->width(), 4u);
  EXPECT_TRUE(route->root_in_result);
  EXPECT_EQ(route->root_dup, 3u);
}

TEST(ShardRouterTest, OutOfDomainQueriesFallBackToHome) {
  auto store = BuildSharded(0.02, 2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const ShardRouter router(store->get());

  for (const char* query : {
           "/site/regions/..",            // upward axis
           "/site//keyword/ancestor::*",  // upward axis, closure form
           "/site[regions]",              // predicate over the root
       }) {
    auto route = router.Route(query);
    ASSERT_TRUE(route.ok()) << query << ": " << route.status().ToString();
    EXPECT_TRUE(route->unrouted) << query;
    EXPECT_FALSE(route->reason.empty()) << query;
    ASSERT_EQ(route->width(), 1u) << query;
    EXPECT_EQ(route->participants[0], (*store)->home_shard()) << query;
  }
}

// --- Single-query oracle identity -----------------------------------------

// Every query must produce byte-identical results (count and document
// order) to the unsharded executor, at every shard count.
TEST(ShardExecuteQueryTest, MatchesUnshardedOracleAcrossShardCounts) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

  const std::vector<std::string> queries = {
      kQ6Prime,
      kQ7,
      kQ15,
      "/site/regions//item",
      "/site/people/person/email",
      "/site//keyword",
      "/site",
      "//site",
      "count(/site)",
      "exists(/site/catgraph/edge)",
      "exists(/site/regions/nosuchtag)",
      "//item[mailbox/mail]",
      "/site/people/person[profile]",
      "//item[mailbox/mail]/@id",
  };

  std::vector<QueryRunResult> oracle;
  for (const std::string& q : queries) {
    auto result = (*fixture)->Run(q, PaperPlan(PlanKind::kXSchedule));
    ASSERT_TRUE(result.ok()) << q << ": " << result.status().ToString();
    oracle.push_back(*std::move(result));
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    auto store = BuildSharded(0.02, shards);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ExecuteOptions exec;
      exec.plan = PaperPlan(PlanKind::kXSchedule);
      exec.collect_nodes = true;
      exec.cold_start = true;
      auto sharded = ShardedExecuteQuery(store->get(), queries[i], exec);
      ASSERT_TRUE(sharded.ok())
          << "K=" << shards << " " << queries[i] << ": "
          << sharded.status().ToString();
      EXPECT_EQ(sharded->count, oracle[i].count)
          << "K=" << shards << " " << queries[i];
      EXPECT_EQ(OrdersOf(sharded->nodes), OrdersOf(oracle[i].nodes))
          << "K=" << shards << " " << queries[i];
    }
  }
}

// --- Workload execution ---------------------------------------------------

struct WorkloadTrace {
  WorkloadResult result;
  std::vector<std::pair<std::size_t, std::size_t>> pulls;
};

Result<WorkloadTrace> RunUnsharded(XMarkFixture* fixture,
                                   WorkloadOptions options) {
  WorkloadTrace trace;
  options.stats = &fixture->stats();
  options.on_pull = [&trace](std::size_t job, std::size_t active) {
    trace.pulls.emplace_back(job, active);
  };
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  for (const char* q : kShardQueries) {
    NAVPATH_RETURN_NOT_OK(
        executor.Add(q, PaperPlan(PlanKind::kXSchedule)));
  }
  NAVPATH_ASSIGN_OR_RETURN(trace.result, executor.Run());
  return trace;
}

struct ShardTrace {
  ShardWorkloadResult result;
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> pulls;
};

Result<ShardTrace> RunSharded(ShardedStore* store, WorkloadOptions options) {
  ShardTrace trace;
  ShardedWorkloadExecutor executor(store, options);
  executor.on_shard_pull = [&trace](std::size_t shard, std::size_t job,
                                    std::size_t active) {
    trace.pulls.emplace_back(shard, job, active);
  };
  for (const char* q : kShardQueries) {
    NAVPATH_RETURN_NOT_OK(
        executor.Add(q, PaperPlan(PlanKind::kXSchedule)));
  }
  NAVPATH_ASSIGN_OR_RETURN(trace.result, executor.Run());
  return trace;
}

// The K=1 identity the subsystem is gated on: one shard, same options =>
// the exact run a plain WorkloadExecutor produces, down to the pull
// schedule, simulated times, and I/O metrics.
TEST(ShardedWorkloadTest, SingleShardByteIdenticalToUnsharded) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto store = BuildSharded(0.02, 1);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  WorkloadOptions options;
  options.policy = WorkloadPolicy::kHybrid;
  options.collect_nodes = true;

  auto plain = RunUnsharded(fixture->get(), options);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  options.stats = nullptr;  // the sharded executor injects per-shard stats
  auto sharded = RunSharded(store->get(), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // Pull-for-pull identical schedule, all on shard 0.
  ASSERT_EQ(sharded->pulls.size(), plain->pulls.size());
  for (std::size_t i = 0; i < plain->pulls.size(); ++i) {
    EXPECT_EQ(std::get<0>(sharded->pulls[i]), 0u);
    EXPECT_EQ(std::get<1>(sharded->pulls[i]), plain->pulls[i].first);
    EXPECT_EQ(std::get<2>(sharded->pulls[i]), plain->pulls[i].second);
  }

  const WorkloadResult& a = plain->result;
  const ShardWorkloadResult& b = sharded->result;
  EXPECT_EQ(b.total_time, a.total_time);
  EXPECT_EQ(b.cpu_time, a.cpu_time);
  EXPECT_EQ(b.metrics.disk_reads, a.metrics.disk_reads);
  EXPECT_EQ(b.metrics.disk_seq_reads, a.metrics.disk_seq_reads);
  EXPECT_EQ(b.metrics.disk_seek_pages, a.metrics.disk_seek_pages);
  EXPECT_EQ(b.metrics.buffer_hits, a.metrics.buffer_hits);
  EXPECT_EQ(b.metrics.buffer_misses, a.metrics.buffer_misses);
  EXPECT_EQ(b.metrics.node_tests, a.metrics.node_tests);
  EXPECT_EQ(b.metrics.clusters_visited, a.metrics.clusters_visited);
  EXPECT_EQ(b.metrics.requests_merged, a.metrics.requests_merged);

  ASSERT_EQ(b.queries.size(), a.queries.size());
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(b.queries[i].count, a.queries[i].count) << kShardQueries[i];
    EXPECT_EQ(b.queries[i].pulls, a.queries[i].pulls) << kShardQueries[i];
    EXPECT_EQ(b.queries[i].finished_at, a.queries[i].finished_at)
        << kShardQueries[i];
    ASSERT_EQ(b.queries[i].nodes.size(), a.queries[i].nodes.size())
        << kShardQueries[i];
    for (std::size_t n = 0; n < a.queries[i].nodes.size(); ++n) {
      EXPECT_EQ(b.queries[i].nodes[n].id, a.queries[i].nodes[n].id);
      EXPECT_EQ(b.queries[i].nodes[n].order, a.queries[i].nodes[n].order);
    }
  }
}

// Fan-out runs must still merge back to the oracle's counts and document
// order at every K.
TEST(ShardedWorkloadTest, FanOutMatchesUnshardedResults) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  WorkloadOptions options;
  options.collect_nodes = true;
  auto plain = RunUnsharded(fixture->get(), options);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    auto store = BuildSharded(0.02, shards);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    WorkloadOptions shard_options;
    shard_options.collect_nodes = true;
    auto sharded = RunSharded(store->get(), shard_options);
    ASSERT_TRUE(sharded.ok())
        << "K=" << shards << ": " << sharded.status().ToString();

    ASSERT_EQ(sharded->result.queries.size(), plain->result.queries.size());
    for (std::size_t i = 0; i < plain->result.queries.size(); ++i) {
      EXPECT_EQ(sharded->result.queries[i].count,
                plain->result.queries[i].count)
          << "K=" << shards << " " << kShardQueries[i];
      EXPECT_EQ(OrdersOf(sharded->result.queries[i].nodes),
                OrdersOf(plain->result.queries[i].nodes))
          << "K=" << shards << " " << kShardQueries[i];
    }
  }
}

TEST(ShardedWorkloadTest, DeterministicAcrossRebuilds) {
  WorkloadOptions options;
  options.collect_nodes = true;

  auto store_a = BuildSharded(0.02, 2);
  ASSERT_TRUE(store_a.ok()) << store_a.status().ToString();
  auto run_a = RunSharded(store_a->get(), options);
  ASSERT_TRUE(run_a.ok()) << run_a.status().ToString();

  auto store_b = BuildSharded(0.02, 2);
  ASSERT_TRUE(store_b.ok()) << store_b.status().ToString();
  auto run_b = RunSharded(store_b->get(), options);
  ASSERT_TRUE(run_b.ok()) << run_b.status().ToString();

  EXPECT_EQ(run_a->pulls, run_b->pulls);
  EXPECT_EQ(run_a->result.total_time, run_b->result.total_time);
  EXPECT_EQ(run_a->result.metrics.disk_reads,
            run_b->result.metrics.disk_reads);
  ASSERT_EQ(run_a->result.queries.size(), run_b->result.queries.size());
  for (std::size_t i = 0; i < run_a->result.queries.size(); ++i) {
    EXPECT_EQ(run_a->result.queries[i].count,
              run_b->result.queries[i].count);
    EXPECT_EQ(OrdersOf(run_a->result.queries[i].nodes),
              OrdersOf(run_b->result.queries[i].nodes));
  }
}

TEST(ShardedWorkloadTest, ExposesShardObservability) {
  auto store = BuildSharded(0.02, 2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  WorkloadOptions options;
  options.collect_nodes = true;
  auto run = RunSharded(store->get(), options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const RegistrySnapshot& snapshot = run->result.scheduler;
  // kShardQueries has fan-out, single-shard, and root queries.
  EXPECT_GT(snapshot.CounterOr("shard.fanout"), 0u);
  EXPECT_GT(snapshot.CounterOr("shard.routed.single"), 0u);
  // "/site" ran on both shards; its duplicate root was merged away.
  EXPECT_GT(snapshot.CounterOr("shard.merge.duplicates"), 0u);
  const HistogramSummary* width =
      snapshot.FindHistogram("shard.fanout.width");
  ASSERT_NE(width, nullptr);
  EXPECT_EQ(width->count, std::size(kShardQueries));

  ASSERT_EQ(run->result.utilization.size(), 2u);
  bool some_busy = false;
  for (std::size_t k = 0; k < 2; ++k) {
    const std::string prefix = "disk.shard." + std::to_string(k) + ".";
    double utilization = -1.0;
    for (const auto& [name, value] : snapshot.gauges) {
      if (name == prefix + "utilization") utilization = value;
    }
    EXPECT_GE(utilization, 0.0) << "missing gauge for shard " << k;
    EXPECT_LE(utilization, 1.0);
    EXPECT_EQ(utilization, run->result.utilization[k]);
    some_busy |= utilization > 0.0;
  }
  EXPECT_TRUE(some_busy);
}

// --- Fault seeding --------------------------------------------------------

TEST(ShardedWorkloadTest, FaultStreamsAreDeterministicPerShard) {
  FixtureOptions options;
  options.db.faults.seed = 42;
  options.db.faults.transient_read_error_rate = 0.02;
  options.db.faults.latency_spike_rate = 0.02;

  WorkloadOptions workload;
  workload.collect_nodes = true;

  // Same build + same run => the same injected faults, twice.
  auto store_a = BuildSharded(0.02, 2, options);
  ASSERT_TRUE(store_a.ok()) << store_a.status().ToString();
  auto run_a = RunSharded(store_a->get(), workload);
  ASSERT_TRUE(run_a.ok()) << run_a.status().ToString();

  auto store_b = BuildSharded(0.02, 2, options);
  ASSERT_TRUE(store_b.ok()) << store_b.status().ToString();
  auto run_b = RunSharded(store_b->get(), workload);
  ASSERT_TRUE(run_b.ok()) << run_b.status().ToString();

  EXPECT_GT(run_a->result.metrics.faults_injected, 0u);
  EXPECT_EQ(run_a->result.metrics.faults_injected,
            run_b->result.metrics.faults_injected);
  EXPECT_EQ(run_a->result.metrics.fault_retries,
            run_b->result.metrics.fault_retries);
  EXPECT_EQ(run_a->result.total_time, run_b->result.total_time);
  for (std::size_t i = 0; i < run_a->result.queries.size(); ++i) {
    EXPECT_EQ(run_a->result.queries[i].count,
              run_b->result.queries[i].count);
  }

  // K=1 replays the unsharded fault stream exactly (base seed kept).
  auto fixture = XMarkFixture::Create(0.02, options);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto plain = RunUnsharded(fixture->get(), workload);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto store_one = BuildSharded(0.02, 1, options);
  ASSERT_TRUE(store_one.ok()) << store_one.status().ToString();
  workload.stats = nullptr;
  auto run_one = RunSharded(store_one->get(), workload);
  ASSERT_TRUE(run_one.ok()) << run_one.status().ToString();
  EXPECT_EQ(run_one->result.metrics.faults_injected,
            plain->result.metrics.faults_injected);
  EXPECT_EQ(run_one->result.metrics.fault_retries,
            plain->result.metrics.fault_retries);
  EXPECT_EQ(run_one->result.total_time, plain->result.total_time);
}

// --- Validation and entry-point rejection ---------------------------------

TEST(ShardValidationTest, RejectsShardsCombinedWithTransactions) {
  auto fixture = XMarkFixture::Create(0.01);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto store = BuildSharded(0.01, 1);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  TxnManager txn((*fixture)->db(), (*fixture)->mutable_doc());

  WorkloadOptions options;
  options.shards = store->get();
  options.txn = &txn;
  const Status status = ValidateWorkloadOptions(options);
  ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("transactions"), std::string::npos)
      << status.ToString();
}

TEST(ShardValidationTest, RejectsShardsCombinedWithSharing) {
  auto store = BuildSharded(0.01, 1);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  WorkloadOptions options;
  options.shards = store->get();
  options.enable_sharing = true;
  const Status status = ValidateWorkloadOptions(options);
  ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(ShardValidationTest, PlainExecutorRefusesShardedOptions) {
  auto fixture = XMarkFixture::Create(0.01);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto store = BuildSharded(0.01, 1);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  WorkloadOptions options;
  options.shards = store->get();
  WorkloadExecutor executor((*fixture)->db(), (*fixture)->doc(), options);
  ASSERT_TRUE(executor.Add("/site//keyword",
                           PaperPlan(PlanKind::kXSchedule)).ok());
  auto run = executor.Run();
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsInvalidArgument()) << run.status().ToString();
  EXPECT_NE(run.status().ToString().find("ShardedWorkloadExecutor"),
            std::string::npos)
      << run.status().ToString();
}

TEST(ShardValidationTest, ServeEntryPointRejectsShardKnobs) {
  auto fixture = XMarkFixture::Create(0.01);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto store = BuildSharded(0.01, 1);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  TxnManager txn((*fixture)->db(), (*fixture)->mutable_doc());

  ServeOptions serve;
  serve.tenants.push_back(TenantSpec{});
  serve.tenants.back().name = "tenant";

  // shards + txn gets the combination-specific message.
  serve.workload.shards = store->get();
  serve.workload.txn = &txn;
  Status status = ValidateServeOptions(serve);
  ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("transactions"), std::string::npos)
      << status.ToString();

  // shards alone is rejected too: serving drives one unsharded executor.
  serve.workload.txn = nullptr;
  status = ValidateServeOptions(serve);
  ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("sharded"), std::string::npos)
      << status.ToString();
}

TEST(ShardedWorkloadTest, RejectsOutOfDomainQueriesAtMultiShard) {
  auto store = BuildSharded(0.02, 2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  WorkloadOptions options;
  ShardedWorkloadExecutor executor(store->get(), options);
  const Status status =
      executor.Add("/site/regions/..", PaperPlan(PlanKind::kXSchedule));
  ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();

  // The same query is fine at K=1 (the home shard holds everything) and
  // matches the unsharded oracle.
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto oracle = (*fixture)->Run("/site/regions/..",
                                PaperPlan(PlanKind::kXSchedule));
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  auto one = BuildSharded(0.02, 1);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ExecuteOptions exec;
  exec.plan = PaperPlan(PlanKind::kXSchedule);
  exec.collect_nodes = true;
  exec.cold_start = true;
  auto sharded = ShardedExecuteQuery(one->get(), "/site/regions/..", exec);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->count, oracle->count);
  EXPECT_EQ(OrdersOf(sharded->nodes), OrdersOf(oracle->nodes));
}

}  // namespace
}  // namespace navpath
