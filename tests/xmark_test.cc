// Tests for the XMark-shaped generator and the paper's query workload.
#include <gtest/gtest.h>

#include "benchlib/harness.h"
#include "xmark/generator.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

TEST(XMarkGeneratorTest, Deterministic) {
  TagRegistry tags1, tags2;
  XMarkOptions options;
  options.scale = 0.01;
  const DomTree a = GenerateXMark(options, &tags1);
  const DomTree b = GenerateXMark(options, &tags2);
  ASSERT_EQ(a.size(), b.size());
  for (DomNodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(tags1.Name(a.node(i).tag), tags2.Name(b.node(i).tag));
    EXPECT_EQ(a.node(i).text, b.node(i).text);
  }
}

TEST(XMarkGeneratorTest, ElementCountsFollowScaleFactor) {
  TagRegistry tags;
  XMarkOptions options;
  options.scale = 0.02;
  const DomTree small = GenerateXMark(options, &tags);
  const std::size_t items_small = small.CountTag(*tags.Lookup("item"));

  options.scale = 0.04;
  const DomTree big = GenerateXMark(options, &tags);
  const std::size_t items_big = big.CountTag(*tags.Lookup("item"));

  EXPECT_NEAR(static_cast<double>(items_big),
              2.0 * static_cast<double>(items_small),
              0.1 * static_cast<double>(items_big));
  // XMark proportions at any scale: persons > items > open > closed.
  EXPECT_NEAR(static_cast<double>(items_small), 0.02 * 21750, 30);
  EXPECT_NEAR(static_cast<double>(big.CountTag(*tags.Lookup("person"))),
              0.04 * 25500, 60);
}

TEST(XMarkGeneratorTest, StructureSupportsPaperQueries) {
  TagRegistry tags;
  XMarkOptions options;
  options.scale = 0.05;
  const DomTree tree = GenerateXMark(options, &tags);

  // Q6': items only below regions.
  auto q6 = ParseQuery(kQ6Prime, &tags);
  ASSERT_TRUE(q6.ok());
  const std::uint64_t items = OracleCount(tree, *q6, tree.root());
  EXPECT_EQ(items, tree.CountTag(*tags.Lookup("item")));
  EXPECT_GT(items, 0u);

  // Q7: prose containers; a large node-count fraction.
  auto q7 = ParseQuery(kQ7, &tags);
  ASSERT_TRUE(q7.ok());
  const std::uint64_t prose = OracleCount(tree, *q7, tree.root());
  EXPECT_EQ(prose, tree.CountTag(*tags.Lookup("description")) +
                       tree.CountTag(*tags.Lookup("annotation")) +
                       tree.CountTag(*tags.Lookup("email")));

  // Q15: deep and very selective, but non-empty.
  auto q15 = ParseQuery(kQ15, &tags);
  ASSERT_TRUE(q15.ok());
  const std::uint64_t deep = OracleCount(tree, *q15, tree.root());
  EXPECT_GT(deep, 0u);
  EXPECT_LT(deep, items / 4);
}

TEST(XMarkGeneratorTest, AttributesMatchXMarkSchema) {
  TagRegistry tags;
  XMarkOptions options;
  options.scale = 0.02;
  const DomTree tree = GenerateXMark(options, &tags);

  // Every item carries an id attribute; itemrefs point at items.
  auto ids = ParseQuery("count(/site/regions//item/@id)", &tags);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(OracleCount(tree, *ids, tree.root()),
            tree.CountTag(*tags.Lookup("item")));
  auto refs = ParseQuery(
      "count(/site/closed_auctions/closed_auction/itemref/@item)", &tags);
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ(OracleCount(tree, *refs, tree.root()),
            tree.CountTag(*tags.Lookup("closed_auction")));
  EXPECT_GT(tree.attribute_count(), tree.CountTag(*tags.Lookup("item")));
}

TEST(XMarkFixtureTest, AttributeQueriesAgreeAcrossPlans) {
  FixtureOptions options;
  options.db.page_size = 2048;
  options.db.buffer_pages = 128;
  auto fixture = XMarkFixture::Create(0.01, options);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  std::uint64_t counts[3];
  int i = 0;
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    auto result =
        (*fixture)->Run("count(/site/regions//item/@id)", PaperPlan(kind));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    counts[i++] = result->count;
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[1], counts[2]);
  EXPECT_GT(counts[0], 0u);
}

TEST(XMarkGeneratorTest, SelectivityOrdering) {
  TagRegistry tags;
  XMarkOptions options;
  options.scale = 0.05;
  const DomTree tree = GenerateXMark(options, &tags);
  auto q6 = ParseQuery(kQ6Prime, &tags);
  auto q7 = ParseQuery(kQ7, &tags);
  auto q15 = ParseQuery(kQ15, &tags);
  ASSERT_TRUE(q6.ok() && q7.ok() && q15.ok());
  const auto c6 = OracleCount(tree, *q6, tree.root());
  const auto c7 = OracleCount(tree, *q7, tree.root());
  const auto c15 = OracleCount(tree, *q15, tree.root());
  // Paper's workload profile: Q7 touches the most, Q15 the least.
  EXPECT_GT(c7, c6);
  EXPECT_GT(c6, c15);
}

TEST(XMarkFixtureTest, EndToEndPaperQueriesAgreeAcrossPlans) {
  FixtureOptions options;
  options.db.page_size = 2048;
  options.db.buffer_pages = 128;
  auto fixture = XMarkFixture::Create(0.01, options);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

  for (const char* query : {kQ6Prime, kQ7, kQ15}) {
    std::uint64_t counts[3];
    int i = 0;
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      auto result = (*fixture)->Run(query, PaperPlan(kind));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      counts[i++] = result->count;
    }
    EXPECT_EQ(counts[0], counts[1]) << query;
    EXPECT_EQ(counts[1], counts[2]) << query;
    EXPECT_GT(counts[0], 0u) << query;
  }
}

}  // namespace
}  // namespace navpath
