// Tests for the observability subsystem: histograms, the metrics
// registry, the simulated-time tracer, and EXPLAIN ANALYZE.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/executor.h"
#include "compiler/workload_executor.h"
#include "observe/metrics_registry.h"
#include "observe/trace.h"
#include "tests/test_util.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

// --- Histogram -----------------------------------------------------------

TEST(HistogramTest, ExactBelowLinearLimit) {
  Histogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  // Values below 64 land in exact buckets: quantiles are exact.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 31u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 63u);
}

TEST(HistogramTest, QuantileErrorIsBounded) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = q * 100000.0;
    const auto reported = static_cast<double>(h.ValueAtQuantile(q));
    EXPECT_GE(reported, exact - 1.0) << q;  // never underestimates
    EXPECT_LE(reported, exact * 1.04) << q;  // ≤ 3.2% bucket error
  }
}

TEST(HistogramTest, QuantileNeverExceedsMax) {
  Histogram h;
  h.Record(1000);
  h.Record(1000000);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1000000u);
  EXPECT_EQ(h.max(), 1000000u);
}

TEST(HistogramTest, MeanCountAndRecordN) {
  Histogram h;
  h.RecordN(10, 3);
  h.Record(70);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), (3 * 10 + 70) / 4.0);
}

TEST(HistogramTest, MergeAndReset) {
  Histogram a;
  Histogram b;
  a.Record(5);
  b.Record(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
}

TEST(HistogramTest, DeterministicAcrossInsertionOrder) {
  Histogram forward;
  Histogram backward;
  for (std::uint64_t v = 1; v <= 1000; ++v) forward.Record(v * 97);
  for (std::uint64_t v = 1000; v >= 1; --v) backward.Record(v * 97);
  for (const double q : {0.1, 0.5, 0.95, 0.99}) {
    EXPECT_EQ(forward.ValueAtQuantile(q), backward.ValueAtQuantile(q));
  }
}

// --- MetricsRegistry -----------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.Counter("pulls") += 3;
  registry.Gauge("depth") = 1.5;
  registry.GetHistogram("latency").Record(42);

  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "pulls");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "latency");
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].p50, 42u);
  EXPECT_FALSE(snap.ToString().empty());
}

TEST(MetricsRegistryTest, SnapshotOrderIsLexicographic) {
  MetricsRegistry registry;
  registry.Counter("zeta") = 1;
  registry.Counter("alpha") = 2;
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
}

TEST(MetricsRegistryTest, ResetKeepsNamesZeroesValues) {
  MetricsRegistry registry;
  registry.Counter("c") = 7;
  registry.GetHistogram("h").Record(9);
  registry.Reset();
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

// --- common/metrics windowing --------------------------------------------

TEST(MetricsWindowTest, DeltaSubtractsCounters) {
  Metrics m;
  m.disk_reads = 10;
  m.buffer_hits = 5;
  m.elevator_depth_max = 8;
  const Metrics start = m.Snapshot();
  m.disk_reads = 25;
  m.buffer_hits = 6;
  m.elevator_depth_max = 12;
  const Metrics d = m.Delta(start);
  EXPECT_EQ(d.disk_reads, 15u);
  EXPECT_EQ(d.buffer_hits, 1u);
  // High-water mark, not a counter: the window reports the current max.
  EXPECT_EQ(d.elevator_depth_max, 12u);
}

// --- Shared fixture for end-to-end observe tests -------------------------

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  return options;
}

struct ObserveFixture {
  Database db;
  DomTree tree;
  ImportedDocument doc;
  DocumentStats stats;

  ObserveFixture() : db(SmallDb()), tree(db.tags()) {
    RandomTreeOptions tree_options;
    tree_options.node_count = 500;
    tree_options.tag_alphabet = 3;
    tree = MakeRandomTree(tree_options, 601, db.tags());
    RandomClusteringPolicy policy(448, 3);
    doc = *db.Import(tree, &policy);
    stats = DocumentStats::Build(tree, doc, 512);
  }
};

#if NAVPATH_OBSERVE_ENABLED

// --- Tracer --------------------------------------------------------------

TEST(TracerTest, DisabledByDefault) {
  ObserveFixture f;
  EXPECT_EQ(f.db.tracer(), nullptr);
}

TEST(TracerTest, TracingDoesNotChangeSimulatedCosts) {
  auto run = [](bool traced) {
    ObserveFixture f;
    if (traced) f.db.EnableTracing();
    auto path = ParsePath("//t0//t1", f.db.tags());
    ExecuteOptions exec;
    exec.plan.kind = PlanKind::kXSchedule;
    exec.explain = traced;  // profiling on top of tracing: still free
    auto result = ExecutePath(&f.db, f.doc, *path, exec);
    result.status().AbortIfNotOk();
    return std::make_tuple(result->total_time, result->cpu_time,
                           result->metrics.disk_reads, result->count);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(TracerTest, IdenticalRunsProduceByteIdenticalJson) {
  auto trace = []() {
    ObserveFixture f;
    f.db.EnableTracing();
    auto path = ParsePath("//t0//t1", f.db.tags());
    ExecuteOptions exec;
    exec.plan.kind = PlanKind::kXSchedule;
    exec.explain = true;
    ExecutePath(&f.db, f.doc, *path, exec).status().AbortIfNotOk();
    return f.db.tracer()->ToJson();
  };
  const std::string first = trace();
  const std::string second = trace();
  EXPECT_GT(first.size(), 2u);
  EXPECT_EQ(first, second);
}

TEST(TracerTest, TraceContainsDiskAndOperatorSpans) {
  ObserveFixture f;
  f.db.EnableTracing();
  auto path = ParsePath("//t0//t1", f.db.tags());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  exec.explain = true;  // operator spans need profiling
  ExecutePath(&f.db, f.doc, *path, exec).status().AbortIfNotOk();
  const std::string json = f.db.tracer()->ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"operator\""), std::string::npos);
  EXPECT_NE(json.find("XStep_1"), std::string::npos);
}

TEST(TracerTest, CategoryMaskFiltersEvents) {
  ObserveFixture f;
  TracerOptions options;
  options.categories = static_cast<unsigned>(TraceCategory::kDisk);
  f.db.EnableTracing(options);
  auto path = ParsePath("//t0", f.db.tags());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  exec.explain = true;
  ExecutePath(&f.db, f.doc, *path, exec).status().AbortIfNotOk();
  const std::string json = f.db.tracer()->ToJson();
  EXPECT_NE(json.find("\"cat\":\"disk\""), std::string::npos);
  EXPECT_EQ(json.find("\"cat\":\"operator\""), std::string::npos);
  EXPECT_EQ(json.find("\"cat\":\"scheduler\""), std::string::npos);
}

TEST(TracerTest, MaxEventsCapCountsDrops) {
  SimClock clock;
  TracerOptions options;
  options.max_events = 2;
  Tracer tracer(&clock, options);
  for (int i = 0; i < 5; ++i) {
    tracer.Instant(TraceCategory::kQuery, kTrackScheduler, "tick", i);
  }
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped_events(), 3u);
}

TEST(TracerTest, ResetMeasurementClearsTrace) {
  ObserveFixture f;
  f.db.EnableTracing();
  auto path = ParsePath("//t0", f.db.tags());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  ExecutePath(&f.db, f.doc, *path, exec).status().AbortIfNotOk();
  EXPECT_GT(f.db.tracer()->event_count(), 0u);
  f.db.ResetMeasurement().AbortIfNotOk();
  EXPECT_EQ(f.db.tracer()->event_count(), 0u);
}

// --- EXPLAIN ANALYZE -----------------------------------------------------

TEST(ExplainTest, EstimatesMatchCostModel) {
  ObserveFixture f;
  auto path = ParsePath("/t0/t1", f.db.tags());
  ASSERT_TRUE(path.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  exec.explain = true;
  exec.stats = &f.stats;
  auto result = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->explain, nullptr);
  ASSERT_EQ(result->explain->paths.size(), 1u);
  const PathExplain& explain = result->explain->paths[0];

  std::vector<double> expected_rows;
  const PathEstimate estimate =
      EstimatePathDetailed(f.stats, *path, &expected_rows);
  const PlanCosts costs = EstimatePlanCosts(
      f.stats, *path, f.db.options().disk_model, f.db.costs());
  ASSERT_EQ(explain.steps.size(), path->steps.size());
  ASSERT_EQ(expected_rows.size(), path->steps.size());
  for (std::size_t i = 0; i < explain.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(explain.steps[i].estimated_rows, expected_rows[i]);
  }
  EXPECT_DOUBLE_EQ(explain.estimated_cost, costs.xschedule);
  EXPECT_DOUBLE_EQ(explain.estimated_clusters_touched,
                   estimate.clusters_touched);
  // The last per-step estimate is the path's estimated cardinality.
  EXPECT_DOUBLE_EQ(expected_rows.back(), estimate.result_cardinality);
}

TEST(ExplainTest, ActualRowsReportedForEveryStep) {
  ObserveFixture f;
  // Child-only absolute path with a non-empty result (the seed-601 root
  // is a t2): no duplicates, so the last step's actual row count equals
  // the (distinct) result count — for XScan this requires XAssembly to
  // count speculatively assembled rows on validation, and only then.
  auto path = ParsePath("/t2/t0", f.db.tags());
  ASSERT_TRUE(path.ok());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    exec.explain = true;
    exec.stats = &f.stats;
    auto result = ExecutePath(&f.db, f.doc, *path, exec);
    ASSERT_TRUE(result.ok());
    ASSERT_NE(result->explain, nullptr) << PlanKindName(kind);
    const PathExplain& explain = result->explain->paths[0];
    ASSERT_EQ(explain.steps.size(), 2u);
    EXPECT_GT(result->count, 0u);
    EXPECT_EQ(explain.steps.back().actual_rows, result->count)
        << PlanKindName(kind);
    EXPECT_EQ(result->count,
              OracleEvaluate(f.tree, *path, f.tree.root()).size());
    EXPECT_FALSE(explain.operators.empty()) << PlanKindName(kind);
    std::uint64_t pulls = 0;
    for (const ExplainOperator& op : explain.operators) pulls += op.pulls;
    EXPECT_GT(pulls, 0u) << PlanKindName(kind);
    EXPECT_FALSE(explain.ToString().empty());
  }
}

TEST(ExplainTest, SummaryExactEstimatesMatchActualsExactly) {
  ObserveFixture f;
  ASSERT_NE(f.db.summary(), nullptr);
  // Child-only absolute path: no duplicate rows, so with the synopsis
  // supplying exact cardinalities every step's estimate must equal its
  // measured row count — not approximately, exactly.
  auto path = ParsePath("/t2/t0", f.db.tags());
  ASSERT_TRUE(path.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  exec.explain = true;
  exec.stats = &f.stats;
  auto result = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(result.ok());
  const PathExplain& explain = result->explain->paths[0];
  ASSERT_EQ(explain.steps.size(), path->steps.size());
  for (const ExplainStep& step : explain.steps) {
    EXPECT_EQ(step.estimate_source, "summary-exact") << step.description;
    EXPECT_DOUBLE_EQ(step.estimated_rows,
                     static_cast<double>(step.actual_rows))
        << step.description;
  }
  EXPECT_NE(explain.ToString().find("summary-exact"), std::string::npos);
}

TEST(ExplainTest, EstimateSourceFallsBackToStatsOutsideDomain) {
  ObserveFixture f;
  // Relative path: outside the synopsis' exactness domain, the estimate
  // column comes from the DocumentStats independence model.
  auto path = ParsePath("t0/t1", f.db.tags());
  ASSERT_TRUE(path.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  exec.contexts.push_back(LogicalNode{f.doc.root, 0, f.doc.root_order});
  exec.explain = true;
  exec.stats = &f.stats;
  auto result = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(result.ok());
  const PathExplain& explain = result->explain->paths[0];
  for (const ExplainStep& step : explain.steps) {
    EXPECT_EQ(step.estimate_source, "stats-estimate") << step.description;
  }
}

TEST(ExplainTest, SummaryPrunedPathIsMarked) {
  ObserveFixture f;
  // The random alphabet is t0..t2: t3 exists in no document path, so the
  // summary proves the query empty before any operator runs.
  auto path = ParsePath("//t3", f.db.tags());
  ASSERT_TRUE(path.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXScan;
  exec.explain = true;
  exec.stats = &f.stats;
  auto result = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 0u);
  EXPECT_EQ(result->metrics.clusters_visited, 0u);
  const PathExplain& explain = result->explain->paths[0];
  EXPECT_TRUE(explain.summary_pruned);
  EXPECT_NE(explain.ToString().find("SUMMARY-PRUNED"), std::string::npos);
}

TEST(ExplainTest, ProfilingDoesNotChangeCosts) {
  auto run = [](bool explain) {
    ObserveFixture f;
    auto path = ParsePath("//t1", f.db.tags());
    ExecuteOptions exec;
    exec.plan.kind = PlanKind::kSimple;
    exec.explain = explain;
    auto result = ExecutePath(&f.db, f.doc, *path, exec);
    result.status().AbortIfNotOk();
    return std::make_pair(result->total_time, result->metrics.disk_reads);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ExplainTest, OperatorTimesAreConsistent) {
  ObserveFixture f;
  auto path = ParsePath("/t0/t1/t2", f.db.tags());
  ASSERT_TRUE(path.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  exec.explain = true;
  auto result = ExecutePath(&f.db, f.doc, *path, exec);
  ASSERT_TRUE(result.ok());
  const PathExplain& explain = result->explain->paths[0];
  SimTime self_sum = 0;
  for (const ExplainOperator& op : explain.operators) {
    EXPECT_LE(op.self_time, op.total_time) << op.name;
    EXPECT_LE(op.self_io_wait, op.total_io_wait) << op.name;
    self_sum += op.self_time;
  }
  // Self times partition the plan's measured time (root total).
  SimTime root_total = 0;
  for (const ExplainOperator& op : explain.operators) {
    root_total = std::max(root_total, op.total_time);
  }
  EXPECT_EQ(self_sum, root_total);
}

#endif  // NAVPATH_OBSERVE_ENABLED

// --- Workload arrivals & cost-derived footprints -------------------------

TEST(WorkloadObserveTest, ArrivalsDelayAdmission) {
  ObserveFixture f;
  WorkloadOptions options;
  options.stats = &f.stats;
  WorkloadExecutor executor(&f.db, f.doc, options);
  const PlanOptions plan = [] {
    PlanOptions p;
    p.kind = PlanKind::kXSchedule;
    return p;
  }();
  constexpr SimTime kLate = 50'000'000'000;  // 50 simulated seconds
  ASSERT_TRUE(executor.Add("//t0", plan).ok());
  ASSERT_TRUE(
      executor.Add(ParseQuery("//t1", f.db.tags()).ValueOrDie(), plan, {}, kLate)
          .ok());
  auto result = executor.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->queries.size(), 2u);
  EXPECT_EQ(result->queries[0].arrival, 0u);
  EXPECT_EQ(result->queries[1].arrival, kLate);
  // The late query is not admitted before it arrives, and its turnaround
  // is measured from arrival, not from time zero.
  EXPECT_GE(result->queries[1].admitted_at, kLate);
  EXPECT_EQ(result->queries[1].turnaround(),
            result->queries[1].finished_at - kLate);
  // The first query finished long before the second arrived (idle gap).
  EXPECT_LT(result->queries[0].finished_at, kLate);
  EXPECT_GE(result->total_time, kLate);
}

TEST(WorkloadObserveTest, ArrivalsMustBeNondecreasing) {
  ObserveFixture f;
  WorkloadExecutor executor(&f.db, f.doc);
  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  ASSERT_TRUE(
      executor.Add(ParseQuery("//t0", f.db.tags()).ValueOrDie(), plan, {}, 100)
          .ok());
  const Status status =
      executor.Add(ParseQuery("//t1", f.db.tags()).ValueOrDie(), plan, {}, 50);
  EXPECT_FALSE(status.ok());
}

TEST(WorkloadObserveTest, CostDerivedFootprintPreservesResults) {
  auto run = [](bool derived) {
    ObserveFixture f;
    WorkloadOptions options;
    options.stats = &f.stats;
    options.footprint_from_stats = derived;
    WorkloadExecutor executor(&f.db, f.doc, options);
    PlanOptions plan;
    plan.kind = PlanKind::kXSchedule;
    for (const char* q : {"//t0", "//t1", "//t2", "//t0//t1"}) {
      executor.Add(q, plan).AbortIfNotOk();
    }
    auto result = executor.Run();
    result.status().AbortIfNotOk();
    std::vector<std::uint64_t> counts;
    for (const auto& query : result->queries) counts.push_back(query.count);
    return counts;
  };
  // Tightening footprints can change the schedule, never the answers.
  EXPECT_EQ(run(true), run(false));
}

TEST(WorkloadObserveTest, SummaryEstimatesPreserveResultsAndDeterminism) {
  // Summary-exact admission footprints and DRR charges can reorder the
  // schedule, never change the answers — and with the synopsis on, the
  // schedule itself is deterministic across identical runs.
  auto run = [](bool summary, std::vector<std::size_t>* schedule) {
    ObserveFixture f;
    WorkloadOptions options;
    options.stats = &f.stats;
    options.summary = summary;
    options.policy = WorkloadPolicy::kShortestRemainingCost;
    if (schedule != nullptr) {
      options.on_pull = [schedule](std::size_t job, std::size_t) {
        schedule->push_back(job);
      };
    }
    WorkloadExecutor executor(&f.db, f.doc, options);
    PlanOptions plan;
    plan.kind = PlanKind::kXSchedule;
    for (const char* q : {"//t0", "//t1", "//t2", "//t0//t1"}) {
      executor.Add(q, plan).AbortIfNotOk();
    }
    auto result = executor.Run();
    result.status().AbortIfNotOk();
    std::vector<std::uint64_t> counts;
    for (const auto& query : result->queries) counts.push_back(query.count);
    return counts;
  };
  EXPECT_EQ(run(true, nullptr), run(false, nullptr));
  std::vector<std::size_t> first, second;
  EXPECT_EQ(run(true, &first), run(true, &second));
  EXPECT_EQ(first, second);
}

TEST(WorkloadObserveTest, RepeatedRunsReportIndependentWindows) {
  ObserveFixture f;
  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  auto run_once = [&]() {
    WorkloadExecutor executor(&f.db, f.doc);
    executor.Add("//t0", plan).AbortIfNotOk();
    auto result = executor.Run();
    result.status().AbortIfNotOk();
    return std::make_pair(result->total_time, result->metrics.disk_reads);
  };
  // Cold starts reset the clock and buffer but deliberately keep the disk
  // head position (the first access of a fresh measurement pays a real
  // seek), so the very first run seeks from the load position. Warm the
  // head once; after that, identical cold-started runs report identical
  // windows instead of accumulating.
  run_once();
  EXPECT_EQ(run_once(), run_once());
}

#if NAVPATH_OBSERVE_ENABLED

TEST(WorkloadObserveTest, ExplainAggregatesPerQuery) {
  ObserveFixture f;
  WorkloadOptions options;
  options.stats = &f.stats;
  options.explain = true;
  WorkloadExecutor executor(&f.db, f.doc, options);
  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  ASSERT_TRUE(executor.Add("/t2/t0", plan).ok());
  ASSERT_TRUE(executor.Add("count(//t0)+count(//t1)", plan).ok());
  auto result = executor.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->queries.size(), 2u);
  ASSERT_NE(result->queries[0].explain, nullptr);
  ASSERT_EQ(result->queries[0].explain->paths.size(), 1u);
  ASSERT_NE(result->queries[1].explain, nullptr);
  ASSERT_EQ(result->queries[1].explain->paths.size(), 2u);
  const PathExplain& first = result->queries[0].explain->paths[0];
  EXPECT_EQ(first.steps.size(), 2u);
  EXPECT_GT(first.steps.back().estimated_rows, 0.0);
  EXPECT_EQ(first.steps.back().actual_rows, result->queries[0].count);
  EXPECT_FALSE(result->queries[0].explain->ToString().empty());
}

#endif  // NAVPATH_OBSERVE_ENABLED

}  // namespace
}  // namespace navpath
