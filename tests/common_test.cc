// Unit tests for the common module: Status/Result, SimClock, Random.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace navpath {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, CopySemantics) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  EXPECT_TRUE(s.IsNotFound());
  t = Status::OK();
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, CodePredicatesMatchOnlyTheirCode) {
  const Status corruption = Status::Corruption("bad page");
  EXPECT_TRUE(corruption.IsCorruption());
  EXPECT_FALSE(corruption.IsIOError());
  EXPECT_FALSE(corruption.IsOutOfMemory());

  const Status oom = Status::OutOfMemory("no frames");
  EXPECT_TRUE(oom.IsOutOfMemory());
  EXPECT_FALSE(oom.IsCorruption());

  const Status ok = Status::OK();
  EXPECT_FALSE(ok.IsCorruption());
  EXPECT_FALSE(ok.IsOutOfMemory());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)),
                 "UnknownCode");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Status FailingOperation() { return Status::IOError("boom"); }

Status PropagatingCaller() {
  NAVPATH_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(PropagatingCaller().IsIOError());
}

Result<int> MakeValue(bool ok) {
  if (ok) return 5;
  return Status::NotFound("no value");
}

Result<int> AssignOrReturnCaller(bool ok) {
  NAVPATH_ASSIGN_OR_RETURN(const int v, MakeValue(ok));
  return v + 1;
}

TEST(MacrosTest, AssignOrReturn) {
  EXPECT_EQ(*AssignOrReturnCaller(true), 6);
  EXPECT_TRUE(AssignOrReturnCaller(false).status().IsNotFound());
}

TEST(SimClockTest, CpuPlusIoEqualsTotal) {
  SimClock clock;
  clock.ChargeCpu(100);
  EXPECT_EQ(clock.now(), 100u);
  EXPECT_EQ(clock.cpu_time(), 100u);
  clock.WaitUntil(500);
  EXPECT_EQ(clock.now(), 500u);
  EXPECT_EQ(clock.cpu_time(), 100u);
  EXPECT_EQ(clock.io_wait_time(), 400u);
  // Waiting for a time in the past is a no-op.
  clock.WaitUntil(300);
  EXPECT_EQ(clock.now(), 500u);
}

TEST(SimClockTest, ToSeconds) {
  EXPECT_DOUBLE_EQ(SimClock::ToSeconds(kSimSecond), 1.0);
  EXPECT_DOUBLE_EQ(SimClock::ToSeconds(kSimMillisecond), 0.001);
}

TEST(RandomTest, Deterministic) {
  Random a(123), b(123), c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, BoundedStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const auto v = rng.NextInRange(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BoundedCoversRange) {
  Random rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

}  // namespace
}  // namespace navpath
