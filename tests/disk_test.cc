// Unit tests for the simulated disk: cost model, sequential detection,
// asynchronous SSTF scheduling, poll semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/disk.h"

namespace navpath {
namespace {

constexpr std::size_t kPage = 512;

struct DiskFixture {
  SimClock clock;
  Metrics metrics;
  DiskModel model;
  SimulatedDisk disk;

  explicit DiskFixture(DiskModel m = DiskModel())
      : model(m), disk(m, kPage, &clock, &metrics) {}

  PageId WritePattern(std::uint8_t fill) {
    const PageId id = disk.AllocatePage();
    std::vector<std::byte> buf(kPage, static_cast<std::byte>(fill));
    disk.WriteSync(id, buf.data()).AbortIfNotOk();
    return id;
  }
};

TEST(DiskModelTest, SequentialIsTransferOnly) {
  DiskModel m;
  EXPECT_EQ(m.AccessCost(5, 6), m.transfer_time);
  EXPECT_EQ(m.AccessCost(5, 5), m.transfer_time);
  EXPECT_GT(m.AccessCost(5, 7), m.transfer_time);
}

TEST(DiskModelTest, SeekGrowsWithDistance) {
  DiskModel m;
  const SimTime near = m.AccessCost(0, 100);
  const SimTime far = m.AccessCost(0, 10000);
  EXPECT_GT(far, near);
  // Square-root model: 100x the distance ~ 10x the variable seek portion.
  const SimTime base = m.seek_base + m.rotational_latency + m.transfer_time;
  EXPECT_NEAR(static_cast<double>(far - base),
              10.0 * static_cast<double>(near - base),
              static_cast<double>(near - base) * 0.1);
}

TEST(DiskTest, ReadBackWrittenData) {
  DiskFixture f;
  const PageId a = f.WritePattern(0xAB);
  const PageId b = f.WritePattern(0xCD);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(a, buf.data()).ok());
  EXPECT_EQ(buf[0], static_cast<std::byte>(0xAB));
  ASSERT_TRUE(f.disk.ReadSync(b, buf.data()).ok());
  EXPECT_EQ(buf[kPage - 1], static_cast<std::byte>(0xCD));
}

TEST(DiskTest, ReadPastEndFails) {
  DiskFixture f;
  std::vector<std::byte> buf(kPage);
  EXPECT_TRUE(f.disk.ReadSync(3, buf.data()).IsIOError());
}

TEST(DiskTest, SequentialScanIsCheaperThanRandom) {
  DiskFixture seq_f;
  for (int i = 0; i < 64; ++i) seq_f.WritePattern(1);
  seq_f.clock.Reset();
  seq_f.disk.ResetTimeline();
  std::vector<std::byte> buf(kPage);
  for (PageId i = 0; i < 64; ++i) {
    ASSERT_TRUE(seq_f.disk.ReadSync(i, buf.data()).ok());
  }
  const SimTime seq_time = seq_f.clock.now();

  DiskFixture rnd_f;
  for (int i = 0; i < 64; ++i) rnd_f.WritePattern(1);
  rnd_f.clock.Reset();
  rnd_f.disk.ResetTimeline();
  for (PageId i = 0; i < 64; ++i) {
    const PageId target = (i * 37) % 64;  // pseudo-random permutation
    ASSERT_TRUE(rnd_f.disk.ReadSync(target, buf.data()).ok());
  }
  EXPECT_GT(rnd_f.clock.now(), 10 * seq_time);
  EXPECT_GT(rnd_f.metrics.disk_seek_pages, 0u);
}

TEST(DiskTest, AsyncServesShortestSeekFirst) {
  DiskFixture f;
  for (int i = 0; i < 100; ++i) f.WritePattern(1);
  std::vector<std::byte> buf(kPage);
  // Position the head at page 50.
  ASSERT_TRUE(f.disk.ReadSync(50, buf.data()).ok());
  // Submit far-away first, nearby second: SSTF must serve 52 before 5.
  ASSERT_TRUE(f.disk.SubmitRead(5).ok());
  ASSERT_TRUE(f.disk.SubmitRead(52).ok());
  auto first = f.disk.WaitForCompletion(buf.data());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->page, 52u);
  auto second = f.disk.WaitForCompletion(buf.data());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->page, 5u);
  EXPECT_GE(f.metrics.async_reorderings, 1u);
}

TEST(DiskTest, AsyncBatchBeatsSyncRandomOrder) {
  // The same set of pages read in submission order synchronously vs
  // handed to the async queue at once: the SSTF sweep must be faster.
  const std::vector<PageId> targets = {90, 10, 80, 20, 70, 30, 60, 40};
  std::vector<std::byte> buf(kPage);

  DiskFixture sync_f;
  for (int i = 0; i < 100; ++i) sync_f.WritePattern(1);
  sync_f.clock.Reset();
  sync_f.disk.ResetTimeline();
  for (const PageId t : targets) {
    ASSERT_TRUE(sync_f.disk.ReadSync(t, buf.data()).ok());
  }
  const SimTime sync_time = sync_f.clock.now();

  DiskFixture async_f;
  for (int i = 0; i < 100; ++i) async_f.WritePattern(1);
  async_f.clock.Reset();
  async_f.disk.ResetTimeline();
  for (const PageId t : targets) {
    ASSERT_TRUE(async_f.disk.SubmitRead(t).ok());
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ASSERT_TRUE(async_f.disk.WaitForCompletion(buf.data()).ok());
  }
  EXPECT_LT(async_f.clock.now(), sync_time);
  EXPECT_LT(async_f.metrics.disk_seek_pages, sync_f.metrics.disk_seek_pages);
}

TEST(DiskTest, WaitWithoutRequestsFails) {
  DiskFixture f;
  std::vector<std::byte> buf(kPage);
  EXPECT_TRUE(f.disk.WaitForCompletion(buf.data()).status().IsNotFound());
}

TEST(DiskTest, PollDoesNotAdvanceClock) {
  DiskFixture f;
  for (int i = 0; i < 10; ++i) f.WritePattern(1);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.SubmitRead(7).ok());
  const SimTime before = f.clock.now();
  // Immediately after submission nothing can have completed.
  EXPECT_FALSE(f.disk.PollCompletion(buf.data()).has_value());
  EXPECT_EQ(f.clock.now(), before);
  // After enough CPU time passes, the completion becomes visible.
  f.clock.ChargeCpu(10 * kSimSecond);
  auto polled = f.disk.PollCompletion(buf.data());
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->page, 7u);
}

TEST(DiskTest, AsyncOverlapsWithCpuWork) {
  DiskFixture f;
  for (int i = 0; i < 1000; ++i) f.WritePattern(1);
  std::vector<std::byte> buf(kPage);
  f.clock.Reset();
  f.disk.ResetTimeline();
  ASSERT_TRUE(f.disk.SubmitRead(900).ok());
  // Busy CPU for longer than the access takes: the wait must then be free.
  f.clock.ChargeCpu(10 * kSimSecond);
  const SimTime before_wait = f.clock.now();
  ASSERT_TRUE(f.disk.WaitForCompletion(buf.data()).ok());
  EXPECT_EQ(f.clock.now(), before_wait);  // I/O finished in the background
}

}  // namespace
}  // namespace navpath
