// Integration tests for clustering, import, and the physical store:
// every policy/document combination must materialize into pages whose
// logical reading (cross-cluster walk) reproduces the DOM exactly.
#include <gtest/gtest.h>

#include <memory>

#include "store/tree_page.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace navpath {
namespace {

DatabaseOptions SmallDbOptions() {
  DatabaseOptions options;
  options.page_size = 512;  // force many clusters even for small trees
  options.buffer_pages = 64;
  return options;
}

std::unique_ptr<ClusteringPolicy> MakePolicy(const std::string& name,
                                             std::size_t budget) {
  if (name == "subtree") {
    return std::make_unique<SubtreeClusteringPolicy>(budget);
  }
  if (name == "round-robin") {
    return std::make_unique<RoundRobinClusteringPolicy>(budget);
  }
  if (name == "random") {
    return std::make_unique<RandomClusteringPolicy>(budget, 99);
  }
  return std::make_unique<DocOrderClusteringPolicy>(budget);
}

TEST(ClusteringTest, SubtreeKeepsSmallTreesTogether) {
  TagRegistry tags;
  auto tree = ParseXml("<a><b><c/></b><d/></a>", &tags);
  ASSERT_TRUE(tree.ok());
  SubtreeClusteringPolicy policy(4096);
  const ClusterAssignment assignment = policy.Assign(*tree);
  for (const auto c : assignment) EXPECT_EQ(c, assignment[0]);
}

TEST(ClusteringTest, RoundRobinScatters) {
  TagRegistry tags;
  RandomTreeOptions opts;
  opts.node_count = 100;
  const DomTree tree = MakeRandomTree(opts, 1, &tags);
  RoundRobinClusteringPolicy policy(600);
  const ClusterAssignment assignment = policy.Assign(tree);
  std::set<std::uint32_t> clusters(assignment.begin(), assignment.end());
  EXPECT_GT(clusters.size(), 2u);
  // Adjacent nodes land in different clusters.
  EXPECT_NE(assignment[0], assignment[1]);
}

TEST(ClusteringTest, PoliciesAreDeterministic) {
  TagRegistry tags;
  RandomTreeOptions opts;
  const DomTree tree = MakeRandomTree(opts, 5, &tags);
  RandomClusteringPolicy p1(600, 7), p2(600, 7);
  EXPECT_EQ(p1.Assign(tree), p2.Assign(tree));
}

// --- Import + store fsck -------------------------------------------------

struct ImportCase {
  std::string policy;
  std::uint64_t tree_seed;
  std::size_t nodes;
};

class ImportRoundTrip : public ::testing::TestWithParam<ImportCase> {};

TEST_P(ImportRoundTrip, LogicalTreeSurvivesMaterialization) {
  const ImportCase& param = GetParam();
  Database db(SmallDbOptions());
  RandomTreeOptions opts;
  opts.node_count = param.nodes;
  const DomTree tree = MakeRandomTree(opts, param.tree_seed, db.tags());

  auto policy = MakePolicy(param.policy, 512 - 64);
  auto doc = db.Import(tree, policy.get());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->core_records, tree.element_count());
  EXPECT_EQ(doc->attribute_records, tree.attribute_count());
  EXPECT_GE(doc->page_count(), 1u);

  // Validate every page's structural invariants.
  for (PageId p = doc->first_page; p <= doc->last_page; ++p) {
    auto guard = db.buffer()->Fix(p);
    ASSERT_TRUE(guard.ok());
    TreePage page(guard->data(), db.options().page_size);
    ASSERT_TRUE(page.Validate().ok()) << "page " << p;
    // Border partner symmetry: target(target(x)) == x (Sec. 3.4).
    for (SlotId s = 0; s < page.slot_count(); ++s) {
      if (!page.IsLive(s) || !page.IsBorder(s)) continue;
      const NodeID partner = page.PartnerOf(s);
      auto partner_guard = db.buffer()->Fix(partner.page);
      ASSERT_TRUE(partner_guard.ok());
      TreePage partner_page(partner_guard->data(), db.options().page_size);
      ASSERT_LT(partner.slot, partner_page.slot_count());
      ASSERT_TRUE(partner_page.IsBorder(partner.slot));
      EXPECT_NE(partner_page.KindOf(partner.slot), page.KindOf(s));
      EXPECT_EQ(partner_page.PartnerOf(partner.slot), (NodeID{p, s}));
    }
  }

  // Walking the paged store reproduces the DOM bijectively.
  auto mapping = MapOrderToNodeID(&db, *doc, tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndTrees, ImportRoundTrip,
    ::testing::Values(
        ImportCase{"subtree", 1, 50}, ImportCase{"subtree", 2, 400},
        ImportCase{"subtree", 3, 1500}, ImportCase{"doc-order", 4, 400},
        ImportCase{"doc-order", 5, 1500}, ImportCase{"round-robin", 6, 200},
        ImportCase{"round-robin", 7, 800}, ImportCase{"random", 8, 200},
        ImportCase{"random", 9, 800}, ImportCase{"random", 10, 1500}),
    [](const ::testing::TestParamInfo<ImportCase>& info) {
      std::string name = info.param.policy + "_" +
                         std::to_string(info.param.nodes) + "_s" +
                         std::to_string(info.param.tree_seed);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ImportTest, HugeFanOutForcesContinuations) {
  // One node with hundreds of foreign children cannot hold all its
  // down-borders in one page: continuation fragments must kick in.
  Database db(SmallDbOptions());
  DomTree tree(db.tags());
  const TagId root_tag = db.tags()->Intern("root");
  const TagId child_tag = db.tags()->Intern("c");
  const DomNodeId root = tree.CreateRoot(root_tag);
  for (int i = 0; i < 400; ++i) {
    const DomNodeId child = tree.AppendChild(root, child_tag);
    tree.AppendText(child, "some text payload here");
    tree.AppendChild(child, child_tag);
  }
  tree.AssignOrderKeys();

  // Scatter children away from the root.
  ClusterAssignment assignment(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    assignment[i] = i == root ? 0 : 1 + static_cast<std::uint32_t>(i % 37);
  }
  ExplicitClusteringPolicy policy(assignment);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_GT(doc->continuation_pairs, 0u);

  auto mapping = MapOrderToNodeID(&db, *doc, tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
}

TEST(ImportTest, SingleNodeDocument) {
  Database db(SmallDbOptions());
  DomTree tree(db.tags());
  tree.CreateRoot(db.tags()->Intern("only"));
  tree.AssignOrderKeys();
  SubtreeClusteringPolicy policy(400);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->page_count(), 1u);
  EXPECT_EQ(doc->border_pairs, 0u);
}

TEST(ImportTest, RejectsEmptyDocument) {
  Database db(SmallDbOptions());
  DomTree tree(db.tags());
  SubtreeClusteringPolicy policy(400);
  EXPECT_FALSE(db.Import(tree, &policy).ok());
}

TEST(ImportTest, TextCapTruncatesStoredText) {
  DatabaseOptions options = SmallDbOptions();
  options.import.text_cap = 8;
  Database db(options);
  DomTree tree(db.tags());
  const DomNodeId root = tree.CreateRoot(db.tags()->Intern("r"));
  tree.AppendText(root, "0123456789ABCDEF");
  tree.AssignOrderKeys();
  SubtreeClusteringPolicy policy(400);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto guard = db.buffer()->Fix(doc->root.page);
  ASSERT_TRUE(guard.ok());
  TreePage page(guard->data(), options.page_size);
  EXPECT_EQ(page.TextOf(doc->root.slot), "01234567");
}

}  // namespace
}  // namespace navpath
