// Tests for in-place updates: insertion (inline, fragment, page split),
// subtree deletion (cross-cluster, fragment collapse), order-key
// midpoints — validated against a DOM mirror via export equality and the
// store fsck after every mutation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "compiler/executor.h"
#include "store/export.h"
#include "store/scan_export.h"
#include "store/update.h"
#include "store/verify.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  return options;
}

/// A store + DOM mirror kept in sync through updates.
struct Mirror {
  Database db;
  DomTree tree;
  ImportedDocument doc;
  DocumentUpdater updater;
  std::unordered_map<DomNodeId, NodeID> ids;  // mirror node -> store node

  explicit Mirror(const char* xml, DatabaseOptions options = SmallDb())
      : db(options), tree(db.tags()), updater(&db, &doc) {
    auto parsed = ParseXml(xml, db.tags());
    parsed.status().AbortIfNotOk();
    tree = std::move(*parsed);
    RandomClusteringPolicy policy(options.page_size - 64, 17);
    doc = *db.Import(tree, &policy);
    auto mapping = MapOrderToNodeID(&db, doc, tree);
    mapping.status().AbortIfNotOk();
    for (DomNodeId n = 0; n < tree.size(); ++n) {
      ids[n] = mapping->at(tree.node(n).order);
    }
  }

  DomNodeId Insert(DomNodeId parent, DomNodeId after, const char* tag,
                   const char* text) {
    const TagId tag_id = db.tags()->Intern(tag);
    const DomNodeId mirror_node = tree.InsertChild(parent, after, tag_id);
    tree.AppendText(mirror_node, text);
    auto result = updater.InsertElement(
        ids.at(parent),
        after == kNilDomNode ? kInvalidNodeID : ids.at(after), tag_id, text);
    result.status().AbortIfNotOk();
    tree.SetOrder(mirror_node, result->order);
    ids[mirror_node] = result->id;
    // A page split may have relocated records: re-resolve all NodeIDs by
    // their (stable) order keys.
    Refresh();
    return mirror_node;
  }

  void Delete(DomNodeId node) {
    updater.DeleteSubtree(ids.at(node)).AbortIfNotOk();
    tree.RemoveSubtree(node);
  }

  /// Re-resolves every mirror node's NodeID via order keys (NodeIDs are
  /// physical and move on page splits).
  void Refresh() {
    std::unordered_map<std::uint64_t, NodeID> by_order;
    CrossClusterCursor cursor(&db);
    std::vector<LogicalNode> queue{LogicalNode{doc.root, 0, doc.root_order}};
    while (!queue.empty()) {
      const LogicalNode n = queue.back();
      queue.pop_back();
      by_order[n.order] = n.id;
      cursor.Start(Axis::kChild, n.id).AbortIfNotOk();
      LogicalNode child;
      for (;;) {
        auto more = cursor.Next(&child);
        more.status().AbortIfNotOk();
        if (!*more) break;
        queue.push_back(child);
      }
    }
    for (auto& [mirror_node, id] : ids) {
      auto it = by_order.find(tree.node(mirror_node).order);
      NAVPATH_CHECK(it != by_order.end());
      id = it->second;
    }
  }

  void CheckConsistent() {
    auto report = VerifyStore(&db, doc);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    auto exported = ExportDocument(&db, doc);
    ASSERT_TRUE(exported.ok()) << exported.status().ToString();
    EXPECT_EQ(*exported, SerializeXml(tree));
    auto scanned = ScanExportDocument(&db, doc);
    ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
    EXPECT_EQ(*scanned, *exported);
  }
};

TEST(UpdateTest, InsertFirstMiddleLast) {
  Mirror m("<r><a/><b/></r>");
  const DomNodeId a = m.tree.node(m.tree.root()).first_child;
  const DomNodeId b = m.tree.node(a).next_sibling;

  m.Insert(m.tree.root(), kNilDomNode, "first", "f");
  m.CheckConsistent();
  m.Insert(m.tree.root(), a, "middle", "m");
  m.CheckConsistent();
  m.Insert(m.tree.root(), b, "last", "");
  m.CheckConsistent();
  EXPECT_EQ(SerializeXml(m.tree),
            "<r><first>f</first><a/><middle>m</middle><b/><last/></r>");
}

TEST(UpdateTest, InsertWithAttributes) {
  Mirror m("<r><a/></r>");
  const DomNodeId a = m.tree.node(m.tree.root()).first_child;
  const TagId tag = m.db.tags()->Intern("item");
  const TagId id_name = m.db.tags()->Intern("id");
  const TagId f_name = m.db.tags()->Intern("featured");
  auto result = m.updater.InsertElement(
      m.ids.at(a), kInvalidNodeID, tag, "payload",
      {{id_name, "item0"}, {f_name, "yes"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Mirror it.
  const DomNodeId mn = m.tree.InsertChild(a, kNilDomNode, tag);
  m.tree.AppendText(mn, "payload");
  m.tree.AddAttribute(mn, id_name, "item0");
  m.tree.AddAttribute(mn, f_name, "yes");
  m.tree.SetOrder(mn, result->order);
  m.ids[mn] = result->id;
  m.CheckConsistent();
  EXPECT_EQ(SerializeXml(m.tree),
            "<r><a><item id=\"item0\" featured=\"yes\">payload</item>"
            "</a></r>");

  // Attribute queries see it through every plan.
  auto path = ParsePath("//item/@id", m.db.tags());
  ASSERT_TRUE(path.ok());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    auto r = ExecutePath(&m.db, m.doc, *path, exec);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->count, 1u) << PlanKindName(kind);
  }
}

TEST(UpdateTest, DeleteElementWithAttributes) {
  Mirror m("<r><a id=\"1\" x=\"2\"><b y=\"3\"/></a><c/></r>");
  const DomNodeId a = m.tree.node(m.tree.root()).first_child;
  EXPECT_EQ(m.doc.attribute_records, 3u);
  m.Delete(a);
  m.CheckConsistent();
  EXPECT_EQ(m.doc.attribute_records, 0u);
  EXPECT_EQ(SerializeXml(m.tree), "<r><c/></r>");
}

TEST(UpdateTest, InsertIntoEmptyElement) {
  Mirror m("<r><empty/></r>");
  const DomNodeId empty = m.tree.node(m.tree.root()).first_child;
  m.Insert(empty, kNilDomNode, "child", "x");
  m.CheckConsistent();
}

TEST(UpdateTest, InsertedNodesAreQueryable) {
  Mirror m("<r><a/></r>");
  const DomNodeId a = m.tree.node(m.tree.root()).first_child;
  m.Insert(a, kNilDomNode, "q", "1");
  m.Insert(m.tree.root(), a, "q", "2");
  m.CheckConsistent();

  // Order keys must order the new nodes correctly for navigation.
  CrossClusterCursor cursor(&m.db);
  ASSERT_TRUE(cursor.Start(Axis::kDescendant, m.doc.root).ok());
  std::vector<std::uint64_t> orders;
  LogicalNode node;
  for (;;) {
    auto more = cursor.Next(&node);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    orders.push_back(node.order);
  }
  // Document order: a, q1 (inside a), q2 (after a).
  ASSERT_EQ(orders.size(), 3u);
  EXPECT_LT(orders[0], orders[1]);
  EXPECT_LT(orders[1], orders[2]);
}

TEST(UpdateTest, ManyInsertsForceFragmentsAndSplits) {
  Mirror m("<r><hub/></r>");
  const DomNodeId hub = m.tree.node(m.tree.root()).first_child;
  DomNodeId last = kNilDomNode;
  for (int i = 0; i < 120; ++i) {
    last = m.Insert(hub, last, "n",
                    "some reasonably long text payload for node");
  }
  m.CheckConsistent();
  EXPECT_GT(m.doc.border_pairs, 0u);  // inline space ran out long ago
}

TEST(UpdateTest, DeleteLeafMiddleAndSubtree) {
  Mirror m("<r><a><x/><y><z/></y></a><b/><c><d/></c></r>");
  const DomNodeId a = m.tree.node(m.tree.root()).first_child;
  const DomNodeId b = m.tree.node(a).next_sibling;
  const DomNodeId c = m.tree.node(b).next_sibling;
  const DomNodeId y = m.tree.node(m.tree.node(a).first_child).next_sibling;

  m.Delete(b);  // middle leaf
  m.CheckConsistent();
  m.Delete(y);  // nested subtree
  m.CheckConsistent();
  m.Delete(c);  // subtree with child
  m.CheckConsistent();
  EXPECT_EQ(SerializeXml(m.tree), "<r><a><x/></a></r>");
}

TEST(UpdateTest, DeleteRootRejected) {
  Mirror m("<r><a/></r>");
  EXPECT_FALSE(m.updater.DeleteSubtree(m.doc.root).ok());
}

TEST(UpdateTest, DeleteInvalidNodeRejected) {
  Mirror m("<r><a/></r>");
  EXPECT_FALSE(m.updater.DeleteSubtree(NodeID{m.doc.root.page, 999}).ok());
}

TEST(UpdateTest, OrderKeyGapsRedistributeUnderAdversarialInserts) {
  // Repeatedly inserting as first child halves the available key interval
  // each time — the adversarial pattern for midpoint allocation. Gap
  // redistribution must respread the local run's keys when an interval
  // pinches shut, so every insert succeeds (the 64-bit key space as a
  // whole is nowhere near full). The DOM mirror can't follow along here —
  // redistribution rewrites order keys it never sees — so the oracle is
  // the export itself.
  Database db(SmallDb());
  auto parsed = ParseXml("<r><a/><b/></r>", db.tags());
  ASSERT_TRUE(parsed.ok());
  RandomClusteringPolicy policy(SmallDb().page_size - 64, 17);
  auto imported = db.Import(*parsed, &policy);
  ASSERT_TRUE(imported.ok());
  ImportedDocument doc = *imported;
  DocumentUpdater updater(&db, &doc);
  const TagId k = db.tags()->Intern("k");
  std::string inserted;
  for (int i = 0; i < 64; ++i) {
    auto result = updater.InsertElement(doc.root, kInvalidNodeID, k, "");
    ASSERT_TRUE(result.ok()) << "insert " << i << ": "
                             << result.status().ToString();
    inserted = "<k/>" + inserted;
  }
  auto report = VerifyStore(&db, doc);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto exported = ExportDocument(&db, doc);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  EXPECT_EQ(*exported, "<r>" + inserted + "<a/><b/></r>");
  auto scanned = ScanExportDocument(&db, doc);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(*scanned, *exported);

  // Redistribution must keep the merged descendant scan strictly
  // increasing in order keys (no collapsed or reordered gaps).
  CrossClusterCursor cursor(&db);
  ASSERT_TRUE(cursor.Start(Axis::kDescendant, doc.root).ok());
  std::vector<std::uint64_t> orders;
  LogicalNode node;
  for (;;) {
    auto more = cursor.Next(&node);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    orders.push_back(node.order);
  }
  ASSERT_EQ(orders.size(), 66u);  // 64 inserted + a + b
  EXPECT_TRUE(std::is_sorted(orders.begin(), orders.end()));
  EXPECT_EQ(std::adjacent_find(orders.begin(), orders.end()), orders.end());
}

TEST(UpdateTest, MergedScansSeeInsertedNodesInDocumentOrder) {
  Mirror m("<r><a/><b/><c/></r>");
  const DomNodeId a = m.tree.node(m.tree.root()).first_child;
  const DomNodeId b = m.tree.node(a).next_sibling;
  // Interleave fresh nodes between the imported ones (first, middle,
  // nested) so redistributed and midpoint keys mix with import-time keys.
  m.Insert(m.tree.root(), kNilDomNode, "k", "front");
  const DomNodeId mid = m.Insert(m.tree.root(), a, "k", "mid");
  m.Insert(mid, kNilDomNode, "k", "nested");
  m.Insert(b, kNilDomNode, "k", "under-b");
  m.CheckConsistent();

  // The descendant axis merges per-cluster scans by order key; the
  // sequence it yields over old and new nodes must be strictly
  // increasing — the document order the mirror serialization encodes.
  CrossClusterCursor cursor(&m.db);
  ASSERT_TRUE(cursor.Start(Axis::kDescendant, m.doc.root).ok());
  std::vector<std::uint64_t> orders;
  LogicalNode node;
  for (;;) {
    auto more = cursor.Next(&node);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    orders.push_back(node.order);
  }
  ASSERT_EQ(orders.size(), 7u);
  EXPECT_TRUE(std::is_sorted(orders.begin(), orders.end()));
  EXPECT_EQ(std::adjacent_find(orders.begin(), orders.end()), orders.end());

  // Every plan shape agrees on the inserted nodes, including the
  // sweep-based XScan whose page visits ignore insertion order.
  auto path = ParsePath("//k", m.db.tags());
  ASSERT_TRUE(path.ok());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    auto result = ExecutePath(&m.db, m.doc, *path, exec);
    ASSERT_TRUE(result.ok()) << PlanKindName(kind);
    EXPECT_EQ(result->count, 4u) << PlanKindName(kind);
  }
}

class RandomizedUpdates : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedUpdates, MutationsStayConsistent) {
  Mirror m(
      "<r><a><b>t1</b><c/></a><d><e><f>t2</f></e></d><g/>"
      "<h><i/><j>t3</j></h></r>");
  Random rng(GetParam());
  std::vector<DomNodeId> live;
  for (DomNodeId n = 0; n < m.tree.size(); ++n) live.push_back(n);

  const char* tags[] = {"u", "v", "w"};
  for (int step = 0; step < 120; ++step) {
    if (rng.NextBool(0.6) || live.size() < 3) {
      // Insert under a random live parent, after a random child (or first).
      const DomNodeId parent = live[rng.NextBounded(live.size())];
      std::vector<DomNodeId> children;
      for (DomNodeId c = m.tree.node(parent).first_child; c != kNilDomNode;
           c = m.tree.node(c).next_sibling) {
        children.push_back(c);
      }
      DomNodeId after = kNilDomNode;
      if (!children.empty() && rng.NextBool(0.7)) {
        after = children[rng.NextBounded(children.size())];
      }
      const char* text = rng.NextBool(0.5) ? "payload text" : "";
      const char* tag = tags[rng.NextBounded(3)];
      const DomNodeId fresh = m.Insert(parent, after, tag, text);
      live.push_back(fresh);
    } else {
      // Delete a random non-root node.
      const std::size_t pick = 1 + rng.NextBounded(live.size() - 1);
      const DomNodeId victim = live[pick];
      // Collect the subtree to prune the live list.
      std::vector<DomNodeId> doomed{victim};
      for (std::size_t i = 0; i < doomed.size(); ++i) {
        for (DomNodeId c = m.tree.node(doomed[i]).first_child;
             c != kNilDomNode; c = m.tree.node(c).next_sibling) {
          doomed.push_back(c);
        }
      }
      m.Delete(victim);
      for (const DomNodeId d : doomed) {
        live.erase(std::find(live.begin(), live.end(), d));
        m.ids.erase(d);
      }
    }
    if (step % 10 == 9) m.CheckConsistent();
    if (step % 20 == 19) {
      // Queries over the mutated store must match the mutated mirror.
      for (const char* q : {"//u//v", "//w/..", "//t0"}) {
        auto path = ParsePath(q, m.db.tags());
        ASSERT_TRUE(path.ok());
        const auto expected =
            OracleEvaluate(m.tree, *path, m.tree.root()).size();
        for (const PlanKind kind :
             {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
          ExecuteOptions exec;
          exec.plan.kind = kind;
          auto result = ExecutePath(&m.db, m.doc, *path, exec);
          ASSERT_TRUE(result.ok()) << PlanKindName(kind);
          ASSERT_EQ(result->count, expected)
              << q << " with " << PlanKindName(kind) << " at step " << step;
        }
      }
    }
  }
  m.CheckConsistent();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedUpdates,
                         ::testing::Values(2024u, 7u, 99u, 12345u, 5150u));

TEST(UpdateTest, QueriesSeeUpdates) {
  Mirror m("<site><regions><africa/></regions></site>");
  const DomNodeId regions = m.tree.node(m.tree.root()).first_child;
  const DomNodeId africa = m.tree.node(regions).first_child;
  for (int i = 0; i < 5; ++i) {
    m.Insert(africa, kNilDomNode, "item", "thing");
  }
  m.CheckConsistent();
  // All three plans see the inserted items.
  auto path = ParsePath("/site/regions//item", m.db.tags());
  ASSERT_TRUE(path.ok());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    auto result = ExecutePath(&m.db, m.doc, *path, exec);
    ASSERT_TRUE(result.ok()) << PlanKindName(kind);
    EXPECT_EQ(result->count, 5u) << PlanKindName(kind);
  }
}

}  // namespace
}  // namespace navpath
