// Shared test utilities: random document generation, explicit clustering,
// and store-vs-oracle comparison helpers.
#ifndef NAVPATH_TESTS_TEST_UTIL_H_
#define NAVPATH_TESTS_TEST_UTIL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "store/clustering.h"
#include "store/cross_cursor.h"
#include "store/database.h"
#include "xml/dom.h"

namespace navpath {

struct RandomTreeOptions {
  std::size_t node_count = 200;
  int max_fanout = 5;
  int tag_alphabet = 4;  // tags t0..t{n-1}
  int max_text_words = 3;
  int max_attrs = 2;  // random attributes a0..a{k-1} per element
};

/// Builds a random labeled tree (document order == DomNodeId order).
inline DomTree MakeRandomTree(const RandomTreeOptions& options,
                              std::uint64_t seed, TagRegistry* tags) {
  DomTree tree(tags);
  Random rng(seed);
  std::vector<TagId> alphabet;
  for (int i = 0; i < options.tag_alphabet; ++i) {
    alphabet.push_back(tags->Intern("t" + std::to_string(i)));
  }
  auto random_tag = [&] {
    return alphabet[rng.NextBounded(alphabet.size())];
  };
  auto random_text = [&] {
    std::string text;
    const int words =
        static_cast<int>(rng.NextBounded(options.max_text_words + 1));
    for (int i = 0; i < words; ++i) text += "word ";
    return text;
  };
  std::vector<TagId> attr_names;
  for (int i = 0; i < 3; ++i) {
    attr_names.push_back(tags->Intern("a" + std::to_string(i)));
  }
  auto add_attrs = [&](DomNodeId element) {
    const int n =
        static_cast<int>(rng.NextBounded(options.max_attrs + 1));
    for (int i = 0; i < n; ++i) {
      tree.AddAttribute(element, attr_names[rng.NextBounded(3)], "val");
    }
  };
  const DomNodeId root = tree.CreateRoot(random_tag());
  tree.AppendText(root, random_text());
  add_attrs(root);
  // Grow by attaching to a random frontier node, biased towards recent
  // nodes so depth varies.
  std::vector<DomNodeId> frontier{root};
  std::vector<int> child_count{0};
  while (tree.element_count() < options.node_count) {
    const std::size_t pick =
        frontier.size() -
        1 - rng.NextBounded(std::min<std::size_t>(frontier.size(), 8));
    const DomNodeId parent = frontier[pick];
    if (child_count[pick] >= options.max_fanout) {
      frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
      child_count.erase(child_count.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      if (frontier.empty()) {
        frontier.push_back(root);
        child_count.push_back(options.max_fanout);  // root saturated; stop
        break;
      }
      continue;
    }
    ++child_count[pick];
    const DomNodeId child = tree.AppendChild(parent, random_tag());
    tree.AppendText(child, random_text());
    add_attrs(child);
    frontier.push_back(child);
    child_count.push_back(0);
  }
  tree.AssignOrderKeys();
  return tree;
}

/// WARNING: MakeRandomTree appends children to arbitrary frontier nodes,
/// so DomNodeIds are NOT in document order; use node .order fields.
/// (DocOrderClusteringPolicy assumes id order == document order and is
/// only meaningful for parser/generator-built trees.)

/// A clustering policy with a fixed, explicit assignment (for tests).
class ExplicitClusteringPolicy : public ClusteringPolicy {
 public:
  explicit ExplicitClusteringPolicy(ClusterAssignment assignment)
      : assignment_(std::move(assignment)) {}
  ClusterAssignment Assign(const DomTree&) override { return assignment_; }
  const char* name() const override { return "explicit"; }

 private:
  ClusterAssignment assignment_;
};

/// Maps every node's order key (elements AND attributes) to its NodeID by
/// walking the paged store from the root. Fails if the physical tree
/// disagrees structurally with `tree`.
Result<std::unordered_map<std::uint64_t, NodeID>> MapOrderToNodeID(
    Database* db, const ImportedDocument& doc, const DomTree& tree);

}  // namespace navpath

#endif  // NAVPATH_TESTS_TEST_UTIL_H_
