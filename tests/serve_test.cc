// Tests for the serving layer: an underloaded server must be transparent
// (byte-identical schedule and metrics to a serving-layer-off run), an
// overloaded one must shed at bounded queues with ResourceExhausted,
// degrade admitted queries to the cost model's cheaper tier without
// changing answers, and recover to full fidelity with hysteresis. The
// whole pipeline must be deterministic (same seed + arrivals => same
// admission order, shed set, and disk.priority_jumps) and survive one
// query's media corruption without failing its neighbors.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "benchlib/harness.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "serve/server.h"
#include "storage/disk.h"
#include "storage/fault_injector.h"
#include "storage/page.h"
#include "txn/txn.h"

namespace navpath {
namespace {

const char* const kServeQueries[] = {
    "/site/regions//item",
    "/site/people/person/email",
    "/site//keyword",
};

ServeOptions TwoTenantOptions(const DocumentStats* stats) {
  ServeOptions options;
  options.tenants.resize(2);
  options.tenants[0].name = "gold";
  options.tenants[0].queue_capacity = 16;
  options.tenants[0].weight = 4.0;
  options.tenants[1].name = "bronze";
  options.tenants[1].queue_capacity = 16;
  options.tenants[1].weight = 1.0;
  options.workload.policy = WorkloadPolicy::kHybrid;
  options.workload.stats = stats;
  options.workload.priority_io = true;
  return options;
}

TEST(ServeTest, UnderloadIsByteIdenticalToServingLayerOff) {
  auto fixture = XMarkFixture::Create(0.005);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  XMarkFixture* fx = fixture->get();

  // Arrivals far apart relative to service time: the controller never
  // leaves the normal state and admission is the executor's own FIFO.
  struct Arrival {
    std::size_t tenant;
    const char* query;
    SimTime at;
  };
  const std::vector<Arrival> arrivals = {
      {0, kServeQueries[0], 0},
      {1, kServeQueries[1], 0},
      {0, kServeQueries[2], 400 * kSimMillisecond},
      {1, kServeQueries[0], 900 * kSimMillisecond},
      {0, kServeQueries[1], 1400 * kSimMillisecond},
  };
  const SimTime deadline_slack = 5 * kSimSecond;

  // Serving-layer-off reference: the plain executor with the same
  // arrivals and deadlines, pull schedule recorded.
  std::vector<std::size_t> off_schedule;
  WorkloadOptions off = TwoTenantOptions(&fx->stats()).workload;
  off.on_pull = [&](std::size_t job, std::size_t) {
    off_schedule.push_back(job);
  };
  WorkloadExecutor executor(fx->db(), fx->doc(), off);
  for (const Arrival& a : arrivals) {
    ASSERT_TRUE(executor
                    .Add(a.query, PaperPlan(PlanKind::kXSchedule), a.at,
                         a.at + deadline_slack)
                    .ok());
  }
  auto off_run = executor.Run();
  ASSERT_TRUE(off_run.ok()) << off_run.status().ToString();

  std::vector<std::size_t> serve_schedule;
  ServeOptions options = TwoTenantOptions(&fx->stats());
  options.workload.on_pull = [&](std::size_t job, std::size_t) {
    serve_schedule.push_back(job);
  };
  Server server(fx->db(), fx->doc(), options);
  for (const Arrival& a : arrivals) {
    ASSERT_TRUE(server
                    .Submit(a.tenant, a.query,
                            PaperPlan(PlanKind::kXSchedule), a.at,
                            a.at + deadline_slack)
                    .ok());
  }
  auto served = server.Run();
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  // Byte-identity: the serving layer replayed Run()'s exact decisions.
  EXPECT_EQ(serve_schedule, off_schedule);
  EXPECT_EQ(served->workload.total_time, off_run->total_time);
  EXPECT_EQ(served->workload.metrics.disk_reads,
            off_run->metrics.disk_reads);
  EXPECT_EQ(served->workload.metrics.priority_jumps,
            off_run->metrics.priority_jumps);

  // Nothing shed, nothing degraded, FIFO admission order preserved.
  EXPECT_TRUE(served->shed.empty());
  EXPECT_EQ(served->final_state, OverloadState::kNormal);
  EXPECT_EQ(served->metrics.CounterOr("serve.shed"), 0u);
  EXPECT_EQ(served->metrics.CounterOr("serve.degraded"), 0u);
  ASSERT_EQ(served->admission_order.size(), arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(served->admission_order[i], i);
    EXPECT_FALSE(served->outcomes[i].shed);
    EXPECT_FALSE(served->outcomes[i].degraded);
    EXPECT_TRUE(served->outcomes[i].status.ok());
    EXPECT_EQ(served->outcomes[i].count, off_run->queries[i].count);
  }
}

TEST(ServeTest, OverloadShedsDegradesAndRecovers) {
  auto fixture = XMarkFixture::Create(0.005);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  XMarkFixture* fx = fixture->get();

  // Clean per-query expected counts (degradation must not change them).
  std::vector<std::uint64_t> expected;
  for (const char* q : kServeQueries) {
    auto solo = fx->Run(q, PaperPlan(PlanKind::kXSchedule));
    ASSERT_TRUE(solo.ok()) << solo.status().ToString();
    expected.push_back(solo->count);
  }

  ServeOptions options = TwoTenantOptions(&fx->stats());
  options.workload.max_concurrent = 2;  // forces a backlog under a burst
  options.tenants[0].queue_capacity = 6;
  options.tenants[1].queue_capacity = 2;  // bronze overflows first
  options.degrade_queue_depth = 3;
  options.shed_queue_depth = 6;
  options.recover_below = 1;
  options.recover_hold = 2;
  Server server(fx->db(), fx->doc(), options);

  // A burst well past the queue bounds, then a drained tail that lets the
  // hysteresis walk the controller back to normal.
  std::vector<std::size_t> burst_tenants;
  for (std::size_t i = 0; i < 12; ++i) {
    const std::size_t tenant = i % 2;
    burst_tenants.push_back(tenant);
    ASSERT_TRUE(server
                    .Submit(tenant, kServeQueries[i % 3],
                            PaperPlan(PlanKind::kXSchedule),
                            static_cast<SimTime>(i) * kSimMicrosecond)
                    .ok());
  }
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(server
                    .Submit(0, kServeQueries[i % 3],
                            PaperPlan(PlanKind::kXSchedule),
                            5 * kSimSecond +
                                static_cast<SimTime>(i) * kSimSecond)
                    .ok());
  }
  auto served = server.Run();
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  // All three responses fired: shed, degrade, recover.
  EXPECT_GT(served->metrics.CounterOr("serve.shed"), 0u);
  EXPECT_GT(served->metrics.CounterOr("serve.degraded"), 0u);
  // The burst lands in one arrival batch, so the controller escalates
  // straight to shed; recovery then walks back through degrade to normal.
  EXPECT_GT(served->metrics.CounterOr("serve.state.shed_entered"), 0u);
  EXPECT_GT(served->metrics.CounterOr("serve.state.recovered"), 0u);
  EXPECT_EQ(served->final_state, OverloadState::kNormal);
  EXPECT_FALSE(served->shed.empty());

  bool saw_degraded = false;
  for (std::size_t i = 0; i < served->outcomes.size(); ++i) {
    const ServeOutcome& out = served->outcomes[i];
    if (out.shed) {
      EXPECT_TRUE(out.status.IsResourceExhausted())
          << out.status.ToString();
      // Shed outcomes never ran: turnaround must read zero, not a
      // wrapped finished_at(0) - arrival.
      EXPECT_EQ(out.turnaround(), 0u);
      // The rejection carries the tenant's budget context.
      const std::string tenant_name =
          options.tenants[out.tenant].name;
      EXPECT_NE(out.status.ToString().find(tenant_name), std::string::npos)
          << out.status.ToString();
      continue;
    }
    EXPECT_TRUE(out.status.ok()) << out.status.ToString();
    saw_degraded = saw_degraded || out.degraded;
    // Degradation trades latency, never answers.
    const std::size_t q = i < 12 ? i % 3 : (i - 12) % 3;
    EXPECT_EQ(out.count, expected[q]) << i;
  }
  EXPECT_TRUE(saw_degraded);

  // The quiet tail arrived under a recovered controller: full fidelity.
  for (std::size_t i = 12; i < 16; ++i) {
    EXPECT_FALSE(served->outcomes[i].shed);
    EXPECT_FALSE(served->outcomes[i].degraded);
  }
}

TEST(ServeTest, OverloadBurstWithSubUnitShareStillAdmits) {
  // Regression: a simultaneous burst that trips the overload controller
  // before anything is admitted used to abort the serving loop when the
  // first DRR pass banked deficit without covering any head — a tenant
  // weight under 1 (validation only requires > 0), or an explicit
  // drr_quantum below every head's estimated cost, with the executor
  // still idle. Admission must make progress instead.
  auto fixture = XMarkFixture::Create(0.005);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  XMarkFixture* fx = fixture->get();

  auto run_burst = [&](double weight, double drr_quantum) {
    ServeOptions options;
    options.tenants.resize(1);
    options.tenants[0].name = "only";
    options.tenants[0].queue_capacity = 16;
    options.tenants[0].weight = weight;
    options.workload.policy = WorkloadPolicy::kHybrid;
    options.workload.stats = &fx->stats();
    options.drr_quantum = drr_quantum;
    Server server(fx->db(), fx->doc(), options);
    // Ten arrivals in one batch: past degrade_queue_depth (8), inside
    // the queue bound (16), so everything must eventually run.
    for (std::size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(server
                      .Submit(0, kServeQueries[i % 3],
                              PaperPlan(PlanKind::kXSchedule), 0)
                      .ok());
    }
    auto served = server.Run();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_TRUE(served->shed.empty());
    EXPECT_EQ(served->metrics.CounterOr("serve.admitted"), 10u);
    for (const ServeOutcome& out : served->outcomes) {
      EXPECT_FALSE(out.shed);
      EXPECT_TRUE(out.status.ok()) << out.status.ToString();
    }
  };
  run_burst(0.5, 0.0);  // sub-unit weight, auto quantum
  run_burst(1.0, 0.5);  // explicit quantum below every head cost
}

TEST(ServeTest, DeterministicAdmissionShedAndPriorityJumps) {
  // Same seed + same arrivals => byte-identical admission order, shed
  // set, and disk.priority_jumps, run on two independent fixtures.
  auto run_once = [](std::uint64_t seed) {
    auto fixture = XMarkFixture::Create(0.005);
    EXPECT_TRUE(fixture.ok()) << fixture.status().ToString();
    XMarkFixture* fx = fixture->get();
    ServeOptions options = TwoTenantOptions(&fx->stats());
    options.workload.max_concurrent = 2;
    options.tenants[1].queue_capacity = 2;
    options.degrade_queue_depth = 3;
    options.shed_queue_depth = 6;
    options.tenants[0].deadline_slack = 100 * kSimMillisecond;
    Server server(fx->db(), fx->doc(), options);
    Random rng(seed);
    SimTime at = 0;
    for (std::size_t i = 0; i < 14; ++i) {
      at += rng.NextBounded(2 * kSimMillisecond);
      EXPECT_TRUE(server
                      .Submit(i % 2, kServeQueries[i % 3],
                              PaperPlan(PlanKind::kXSchedule), at)
                      .ok());
    }
    auto served = server.Run();
    EXPECT_TRUE(served.ok()) << served.status().ToString();
    return *std::move(served);
  };
  const ServeResult a = run_once(99);
  const ServeResult b = run_once(99);
  EXPECT_EQ(a.admission_order, b.admission_order);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.workload.metrics.priority_jumps,
            b.workload.metrics.priority_jumps);
  EXPECT_EQ(a.workload.total_time, b.workload.total_time);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].shed, b.outcomes[i].shed) << i;
    EXPECT_EQ(a.outcomes[i].degraded, b.outcomes[i].degraded) << i;
    EXPECT_EQ(a.outcomes[i].finished_at, b.outcomes[i].finished_at) << i;
  }
}

TEST(ServeTest, ValidationRejectsMalformedConfiguration) {
  auto fixture = XMarkFixture::Create(0.002);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  XMarkFixture* fx = fixture->get();

  // Each bad configuration is caught by Run()'s entry validation, not an
  // assert mid-serve.
  auto expect_invalid = [&](const ServeOptions& options, const char* what) {
    Server server(fx->db(), fx->doc(), options);
    ASSERT_TRUE(server
                    .Submit(0, kServeQueries[0], PaperPlan(PlanKind::kSimple),
                            0)
                    .ok())
        << what;
    auto run = server.Run();
    EXPECT_TRUE(!run.ok() && run.status().IsInvalidArgument())
        << what << ": " << run.status().ToString();
  };

  ServeOptions base = TwoTenantOptions(&fx->stats());

  ServeOptions no_tenants = base;
  no_tenants.tenants.clear();
  {
    Server server(fx->db(), fx->doc(), no_tenants);
    EXPECT_TRUE(server.Submit(0, kServeQueries[0],
                              PaperPlan(PlanKind::kSimple), 0)
                    .IsInvalidArgument());
  }

  ServeOptions zero_queue = base;
  zero_queue.tenants[1].queue_capacity = 0;
  expect_invalid(zero_queue, "zero-capacity tenant queue");

  ServeOptions bad_weight = base;
  bad_weight.tenants[0].weight = -1.0;
  expect_invalid(bad_weight, "negative weight");

  ServeOptions bad_alpha = base;
  bad_alpha.ewma_alpha = 0.0;
  expect_invalid(bad_alpha, "zero ewma_alpha");

  ServeOptions inverted = base;
  inverted.shed_queue_depth = 2;
  inverted.degrade_queue_depth = 8;
  expect_invalid(inverted, "shed depth below degrade depth");

  ServeOptions bad_budget = base;
  bad_budget.workload.buffer_budget_fraction = -0.5;
  expect_invalid(bad_budget, "negative buffer budget");

  ServeOptions sharing = base;
  sharing.workload.enable_sharing = true;
  expect_invalid(sharing, "sharing under external admission");

  // Submission-side validation.
  Server server(fx->db(), fx->doc(), base);
  EXPECT_TRUE(server
                  .Submit(7, kServeQueries[0], PaperPlan(PlanKind::kSimple),
                          0)
                  .IsInvalidArgument());  // unknown tenant
  ASSERT_TRUE(server
                  .Submit(0, kServeQueries[0], PaperPlan(PlanKind::kSimple),
                          kSimSecond)
                  .ok());
  EXPECT_TRUE(server
                  .Submit(0, kServeQueries[1], PaperPlan(PlanKind::kSimple),
                          kSimMillisecond)
                  .IsInvalidArgument());  // decreasing arrival
  EXPECT_TRUE(server
                  .Submit(0, kServeQueries[1], PaperPlan(PlanKind::kSimple),
                          2 * kSimSecond, kSimSecond)
                  .IsInvalidArgument());  // deadline in the past
}

TEST(ServeTest, ValidationRejectsTransactionsWithSharing) {
  // WorkloadOptions.txn + enable_sharing must fail BOTH entry points —
  // ValidateWorkloadOptions (covered in txn_test.cc) and the serving
  // layer's ValidateServeOptions — with a descriptive InvalidArgument,
  // and the serve-side rejection must fire before the generic
  // sharing-under-external-admission message.
  auto fixture = XMarkFixture::Create(0.002);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  XMarkFixture* fx = fixture->get();
  TxnManager mgr(fx->db(), fx->mutable_doc());

  ServeOptions options = TwoTenantOptions(&fx->stats());
  options.workload.txn = &mgr;
  options.workload.enable_sharing = true;
  Server server(fx->db(), fx->doc(), options);
  ASSERT_TRUE(server
                  .Submit(0, kServeQueries[0], PaperPlan(PlanKind::kSimple),
                          0)
                  .ok());
  auto run = server.Run();
  ASSERT_FALSE(run.ok());
  ASSERT_TRUE(run.status().IsInvalidArgument()) << run.status().ToString();
  const std::string message = run.status().ToString();
  EXPECT_NE(message.find("transactional serving"), std::string::npos)
      << message;
  EXPECT_NE(message.find("snapshot"), std::string::npos) << message;
}

TEST(ServeTest, OverloadNeverDegradesAWriteTransaction) {
  // Drive the controller into its degrade state with a reader burst and
  // thread write transactions through the same overloaded window: the
  // readers get re-tiered, the writers must never be — there is no
  // cheaper tier for a write, and a writer mid-retry is still a writer.
  auto fixture = XMarkFixture::Create(0.005);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  XMarkFixture* fx = fixture->get();
  TxnManager mgr(fx->db(), fx->mutable_doc());
  const TagId xbid = fx->db()->tags()->Intern("xbid");
  const NodeID root = fx->doc().root;

  ServeOptions options = TwoTenantOptions(&fx->stats());
  options.workload.txn = &mgr;
  options.workload.max_concurrent = 2;
  options.workload.max_writers = 2;
  options.degrade_queue_depth = 3;
  options.shed_queue_depth = 40;  // degrade, never shed
  options.recover_below = 1;
  options.recover_hold = 2;
  options.tenants[0].queue_capacity = 32;
  options.tenants[1].queue_capacity = 32;
  Server server(fx->db(), fx->doc(), options);

  // One arrival batch well past degrade_queue_depth, writers in the
  // middle of the backlog so they are admitted under a degraded
  // controller.
  std::vector<std::size_t> writer_subs;
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(server
                    .Submit(i % 2, kServeQueries[i % 3],
                            PaperPlan(PlanKind::kXSchedule),
                            static_cast<SimTime>(i) * kSimMicrosecond)
                    .ok());
    if (i % 3 == 1) {
      writer_subs.push_back(server.size());
      ASSERT_TRUE(
          server
              .SubmitWrite(i % 2,
                           {WriteOp{root, kInvalidNodeID, xbid, "w"},
                            WriteOp{root, kInvalidNodeID, xbid, "w"}},
                           static_cast<SimTime>(i) * kSimMicrosecond)
              .ok());
    }
  }
  auto served = server.Run();
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  // The overload response fired on readers...
  EXPECT_GT(served->metrics.CounterOr("serve.degraded"), 0u);
  bool reader_degraded = false;
  for (const ServeOutcome& out : served->outcomes) {
    if (!out.is_write) reader_degraded |= out.degraded;
  }
  EXPECT_TRUE(reader_degraded);

  // ...and never on a writer: every write transaction committed at full
  // fidelity, whatever state the controller was in when it was admitted.
  ASSERT_FALSE(writer_subs.empty());
  for (const std::size_t sub : writer_subs) {
    const ServeOutcome& out = served->outcomes[sub];
    ASSERT_TRUE(out.is_write);
    EXPECT_FALSE(out.shed);
    EXPECT_FALSE(out.degraded);
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_GT(out.commit_seq, 0u);
  }
  EXPECT_EQ(mgr.commits(), writer_subs.size());
}

TEST(ServeTest, ServingLoopSurvivesOneQuerysCorruption) {
  // Victim navigates the people subtree; its neighbors stay inside
  // regions, so a page only the victim reads exists and can be poisoned.
  const std::string victim = "/site/people/person/email";
  const std::vector<std::string> neighbors = {"/site/regions//item",
                                              "/site/regions//name"};

  FixtureOptions fixture_options;
  auto clean = XMarkFixture::Create(0.005, fixture_options);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  XMarkFixture* cfx = clean->get();

  auto trace_of = [&](const std::string& query) {
    std::vector<PageId> trace;
    cfx->db()->disk()->SetTrace(&trace);
    auto run = cfx->Run(query, PaperPlan(PlanKind::kXSchedule));
    cfx->db()->disk()->SetTrace(nullptr);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return trace;
  };
  const std::vector<PageId> victim_trace = trace_of(victim);
  std::unordered_set<PageId> neighbor_pages;
  std::vector<std::uint64_t> neighbor_counts;
  for (const std::string& q : neighbors) {
    for (const PageId page : trace_of(q)) neighbor_pages.insert(page);
    auto run = cfx->Run(q, PaperPlan(PlanKind::kXSchedule));
    ASSERT_TRUE(run.ok());
    neighbor_counts.push_back(run->count);
  }
  PageId bad_page = kInvalidPageId;
  for (const PageId page : victim_trace) {
    if (neighbor_pages.count(page) == 0) {
      bad_page = page;
      break;
    }
  }
  ASSERT_NE(bad_page, kInvalidPageId)
      << "no page exclusive to the victim query";

  // Identical import on a poisoned device: every read of bad_page
  // delivers corrupt data, no matter how often the retry loop re-reads.
  FixtureOptions faulty_options = fixture_options;
  faulty_options.db.faults.seed = 11;
  faulty_options.db.faults.permanent_bad_pages = {bad_page};
  auto faulty = XMarkFixture::Create(0.005, faulty_options);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  XMarkFixture* ffx = faulty->get();

  ServeOptions options = TwoTenantOptions(&ffx->stats());
  Server server(ffx->db(), ffx->doc(), options);
  ASSERT_TRUE(server
                  .Submit(0, victim, PaperPlan(PlanKind::kXSchedule), 0)
                  .ok());
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    ASSERT_TRUE(server
                    .Submit(1, neighbors[i],
                            PaperPlan(PlanKind::kXSchedule), 0)
                    .ok());
  }
  auto served = server.Run();
  // The serving loop survives: Run() itself is OK, only the victim's
  // outcome carries the corruption.
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_FALSE(served->outcomes[0].status.ok());
  EXPECT_TRUE(served->outcomes[0].status.IsCorruption())
      << served->outcomes[0].status.ToString();
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    const ServeOutcome& out = served->outcomes[1 + i];
    EXPECT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_EQ(out.count, neighbor_counts[i]) << neighbors[i];
  }
  EXPECT_EQ(served->metrics.CounterOr("serve.failed"), 1u);
}

}  // namespace
}  // namespace navpath
