// Tests for the cross-query prefix-sharing subsystem: trie normalization
// and group extraction, the sharing cost estimator, and end-to-end
// workload execution with shared producer streams (exact results,
// deterministic scheduling, byte-identical declines, spill-to-recompute).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "compiler/workload_executor.h"
#include "share/prefix_trie.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

std::vector<std::uint64_t> OrdersOf(const std::vector<LogicalNode>& nodes) {
  std::vector<std::uint64_t> orders;
  orders.reserve(nodes.size());
  for (const LogicalNode& node : nodes) orders.push_back(node.order);
  return orders;
}

LocationPath PathOf(const std::string& expr, TagRegistry* tags) {
  auto query = ParseQuery(expr, tags);
  query.status().AbortIfNotOk();
  NAVPATH_CHECK(query->paths.size() == 1);
  return query->paths[0];
}

TEST(PrefixTrieTest, QueriesDifferingInFinalStepShareTheirPrefix) {
  Database db;
  PrefixTrie trie;
  trie.AddPath(0, PathOf("/site/regions//item", db.tags()));
  trie.AddPath(1, PathOf("/site/regions//name", db.tags()));
  trie.AddPath(2, PathOf("/site/people/person", db.tags()));
  EXPECT_EQ(trie.paths_indexed(), 3u);

  const std::vector<SharedPrefix> groups = trie.ExtractGroups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members, (std::vector<std::size_t>{0, 1}));
  // The shared prefix is exactly the steps before the differing one.
  EXPECT_EQ(groups[0].depth(), 2u);
  EXPECT_TRUE(groups[0].prefix.absolute);
  EXPECT_EQ(groups[0].prefix.ToString(),
            PathOf("/site/regions", db.tags()).ToString());
}

TEST(PrefixTrieTest, PredicatePositionBoundsTheSharedPrefix) {
  // A predicated step ends a query's shareable run: two queries that
  // differ only in where the predicate sits share exactly the
  // predicate-free common prefix.
  Database db;
  PrefixTrie trie;
  trie.AddPath(0, PathOf("/site/regions/europe[item]/item", db.tags()));
  trie.AddPath(1, PathOf("/site/regions/europe/item[quantity]", db.tags()));

  const std::vector<SharedPrefix> groups = trie.ExtractGroups();
  ASSERT_EQ(groups.size(), 1u);
  // Query 0 stops before europe[item] (depth 2); query 1 before
  // item[quantity] (depth 3). The deepest common candidate is depth 2.
  EXPECT_EQ(groups[0].depth(), 2u);
  EXPECT_EQ(groups[0].prefix.ToString(),
            PathOf("/site/regions", db.tags()).ToString());
  EXPECT_EQ(groups[0].members, (std::vector<std::size_t>{0, 1}));
}

TEST(PrefixTrieTest, RelativePathsAndShallowOverlapDoNotGroup) {
  Database db;
  PrefixTrie trie;
  trie.AddPath(0, PathOf("regions//item", db.tags()));  // relative: skipped
  trie.AddPath(1, PathOf("/site/regions//item", db.tags()));
  trie.AddPath(2, PathOf("/site/people/person", db.tags()));
  EXPECT_EQ(trie.paths_indexed(), 2u);
  // Queries 1 and 2 share only /site (depth 1 < min_depth 2).
  EXPECT_TRUE(trie.ExtractGroups().empty());
  // With min_depth 1 the shallow overlap does group.
  const std::vector<SharedPrefix> shallow = trie.ExtractGroups(1);
  ASSERT_EQ(shallow.size(), 1u);
  EXPECT_EQ(shallow[0].members, (std::vector<std::size_t>{1, 2}));
}

TEST(PrefixTrieTest, GreedyDeepestFirstExtractionIsDisjointAndStable) {
  Database db;
  auto build = [&db]() {
    PrefixTrie trie;
    // Four queries share /site/regions; two of them share the deeper
    // /site/regions/europe. Deepest-first: the europe pair groups at
    // depth 3, the remaining two at depth 2 — every query in exactly
    // one group.
    trie.AddPath(0, PathOf("/site/regions//item", db.tags()));
    trie.AddPath(1, PathOf("/site/regions/europe/item/name", db.tags()));
    trie.AddPath(2, PathOf("/site/regions//name", db.tags()));
    trie.AddPath(3, PathOf("/site/regions/europe/item/payment", db.tags()));
    return trie.ExtractGroups();
  };
  const std::vector<SharedPrefix> groups = build();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].depth(), 4u);  // /site/regions/europe/item
  EXPECT_EQ(groups[0].members, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(groups[1].depth(), 2u);  // /site/regions
  EXPECT_EQ(groups[1].members, (std::vector<std::size_t>{0, 2}));

  // Extraction is deterministic: rebuilding yields the same groups.
  const std::vector<SharedPrefix> again = build();
  ASSERT_EQ(again.size(), groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(again[i].members, groups[i].members);
    EXPECT_EQ(again[i].prefix.ToString(), groups[i].prefix.ToString());
  }
}

TEST(ShareEstimatorTest, AdoptsOverlappingGroupDeclinesDisjointOne) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  Database* db = (*fixture)->db();
  const DocumentStats& stats = (*fixture)->stats();
  const DiskModel& disk = db->options().disk_model;
  const CpuCostModel& cpu = db->costs();

  // Eight queries fanning out of /site/regions: one producer replaces
  // eight overlapping scans — clearly beneficial.
  const LocationPath prefix = PathOf("/site/regions", db->tags());
  std::vector<LocationPath> members;
  for (const char* expr :
       {"/site/regions//item", "/site/regions//name",
        "/site/regions//location", "/site/regions//quantity",
        "/site/regions//payment", "/site/regions//description",
        "/site/regions//shipping", "/site/regions//mailbox"}) {
    members.push_back(PathOf(expr, db->tags()));
  }
  const SharedPrefixEstimate overlapping =
      EstimateSharedPrefix(stats, prefix, members, disk, cpu);
  EXPECT_TRUE(overlapping.beneficial)
      << "shared=" << overlapping.shared_cost()
      << " private=" << overlapping.private_cost_total;
  EXPECT_GT(overlapping.producer_cost, 0.0);
  EXPECT_LT(overlapping.shared_cost(), overlapping.private_cost_total);

  // Two queries sharing only the document root: the residuals ARE the
  // queries, and pooled random-access residual navigation is priced
  // above two private elevator plans — sharing must decline.
  const LocationPath root_prefix = PathOf("/site", db->tags());
  const std::vector<LocationPath> disjoint = {
      PathOf("/site/regions//item", db->tags()),
      PathOf("/site/people/person/email", db->tags())};
  const SharedPrefixEstimate shallow =
      EstimateSharedPrefix(stats, root_prefix, disjoint, disk, cpu);
  EXPECT_FALSE(shallow.beneficial)
      << "shared=" << shallow.shared_cost()
      << " private=" << shallow.private_cost_total;
}

/// Workload queries whose first two steps coincide. Eight members: the
/// estimator prices pooled residual navigation (random reads, about 4x an
/// elevator read) against one private elevator plan per member, so small
/// groups decline and the adoption threshold sits below eight.
const char* const kOverlapping[] = {
    "/site/regions//item",     "/site/regions//name",
    "/site/regions//location", "/site/regions//quantity",
    "/site/regions//payment",  "/site/regions//description",
    "/site/regions//shipping", "/site/regions//mailbox",
};

/// Workload queries that only share /site (below min sharing depth).
const char* const kDisjoint[] = {
    "/site/regions//item",
    "/site/people/person/email",
    "/site/open_auctions//bidder",
    "/site/closed_auctions//price",
};

Result<WorkloadResult> RunShareWorkload(
    XMarkFixture* fixture, const std::vector<std::string>& queries,
    bool enable_sharing, std::size_t share_buffer_pages = 64,
    std::size_t max_concurrent = 0,
    std::vector<std::size_t>* schedule = nullptr) {
  WorkloadOptions options;
  options.policy = WorkloadPolicy::kHybrid;
  options.collect_nodes = true;
  options.stats = &fixture->stats();
  options.enable_sharing = enable_sharing;
  options.share_buffer_pages = share_buffer_pages;
  options.max_concurrent = max_concurrent;
  if (schedule != nullptr) {
    options.on_pull = [schedule](std::size_t job, std::size_t) {
      schedule->push_back(job);
    };
  }
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  for (const std::string& q : queries) {
    NAVPATH_RETURN_NOT_OK(executor.Add(q, PaperPlan(PlanKind::kXSchedule)));
  }
  return executor.Run();
}

TEST(ShareWorkloadTest, SharedExecutionMatchesPrivateResults) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const std::vector<std::string> queries(std::begin(kOverlapping),
                                         std::end(kOverlapping));

  auto private_run = RunShareWorkload(fixture->get(), queries, false);
  ASSERT_TRUE(private_run.ok()) << private_run.status().ToString();

  auto shared_run = RunShareWorkload(fixture->get(), queries, true);
  ASSERT_TRUE(shared_run.ok()) << shared_run.status().ToString();

  // Sharing must actually engage on this workload...
  EXPECT_EQ(shared_run->scheduler.CounterOr("share.groups_adopted"), 1u);
  EXPECT_EQ(shared_run->scheduler.CounterOr("share.members_shared"),
            queries.size());
  EXPECT_GT(shared_run->scheduler.CounterOr("share.producer_pulls"), 0u);
  EXPECT_GT(shared_run->scheduler.CounterOr("share.instances_streamed"),
            0u);
  const HistogramSummary* depth =
      shared_run->scheduler.FindHistogram("share.prefix_hit_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->count, queries.size());
  EXPECT_EQ(depth->min, 2u);

  // ...and be invisible in the results.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(shared_run->queries[i].count, private_run->queries[i].count)
        << queries[i];
    EXPECT_EQ(OrdersOf(shared_run->queries[i].nodes),
              OrdersOf(private_run->queries[i].nodes))
        << queries[i];
  }
}

TEST(ShareWorkloadTest, SharingReducesPhysicalReads) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const std::vector<std::string> queries(std::begin(kOverlapping),
                                         std::end(kOverlapping));

  auto private_run = RunShareWorkload(fixture->get(), queries, false);
  ASSERT_TRUE(private_run.ok()) << private_run.status().ToString();
  auto shared_run = RunShareWorkload(fixture->get(), queries, true);
  ASSERT_TRUE(shared_run.ok()) << shared_run.status().ToString();

  // One producer traverses the prefix region once instead of eight
  // times. The document is buffer-resident at this scale, so physical
  // page reads cannot grow (each page is fetched at most once either
  // way); the saving shows in cluster accesses by the I/O operators.
  EXPECT_LE(shared_run->metrics.disk_reads, private_run->metrics.disk_reads);
  EXPECT_LT(shared_run->metrics.clusters_visited,
            private_run->metrics.clusters_visited);
}

TEST(ShareWorkloadTest, DeclinedSharingIsByteIdentical) {
  // A workload with no shareable prefix (only /site in common, below the
  // minimum depth) must schedule EXACTLY as it does with sharing off:
  // same pull sequence, same makespan, zero adopted groups.
  const std::vector<std::string> queries(std::begin(kDisjoint),
                                         std::end(kDisjoint));

  auto fixture_off = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture_off.ok()) << fixture_off.status().ToString();
  std::vector<std::size_t> schedule_off;
  auto off = RunShareWorkload(fixture_off->get(), queries, false, 64, 0,
                              &schedule_off);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  auto fixture_on = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture_on.ok()) << fixture_on.status().ToString();
  std::vector<std::size_t> schedule_on;
  auto on = RunShareWorkload(fixture_on->get(), queries, true, 64, 0,
                             &schedule_on);
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  EXPECT_EQ(on->scheduler.CounterOr("share.groups_adopted"), 0u);
  ASSERT_FALSE(schedule_off.empty());
  EXPECT_EQ(schedule_on, schedule_off);
  EXPECT_EQ(on->total_time, off->total_time);
}

TEST(ShareWorkloadTest, SharedPullOrderIsDeterministic) {
  // Same seed => same shared pull order, producer advances included.
  const std::vector<std::string> queries(std::begin(kOverlapping),
                                         std::end(kOverlapping));
  auto first_fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(first_fixture.ok()) << first_fixture.status().ToString();
  auto second_fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(second_fixture.ok()) << second_fixture.status().ToString();

  std::vector<std::size_t> first_schedule;
  auto first = RunShareWorkload(first_fixture->get(), queries, true, 64, 0,
                                &first_schedule);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::vector<std::size_t> second_schedule;
  auto second = RunShareWorkload(second_fixture->get(), queries, true, 64,
                                 0, &second_schedule);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  ASSERT_FALSE(first_schedule.empty());
  EXPECT_EQ(first_schedule, second_schedule);
  EXPECT_EQ(first->total_time, second->total_time);
}

TEST(ShareWorkloadTest, SpillDetachesLaggardAndStaysExact) {
  // Serialized admission (max_concurrent = 1) with a one-page stream
  // budget: the unadmitted members lag at cursor 0 while the first
  // member streams past the budget, so they are detached and re-derive
  // their paths privately — with exactly-once results. The shared prefix
  // must out-produce the budget, so these queries share the
  // high-cardinality /site/regions//item instead of /site/regions.
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const std::vector<std::string> queries = {
      "/site/regions//item/name",        "/site/regions//item/location",
      "/site/regions//item/quantity",    "/site/regions//item/payment",
      "/site/regions//item/description", "/site/regions//item/shipping",
      "/site/regions//item/incategory",  "/site/regions//item/mailbox",
  };

  auto private_run = RunShareWorkload(fixture->get(), queries, false);
  ASSERT_TRUE(private_run.ok()) << private_run.status().ToString();

  auto spilled = RunShareWorkload(fixture->get(), queries, true,
                                  /*share_buffer_pages=*/1,
                                  /*max_concurrent=*/1);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ(spilled->scheduler.CounterOr("share.groups_adopted"), 1u);
  EXPECT_GT(spilled->scheduler.CounterOr("share.spills"), 0u);
  EXPECT_GT(spilled->scheduler.CounterOr("share.private_fallbacks"), 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(spilled->queries[i].count, private_run->queries[i].count)
        << queries[i];
    EXPECT_EQ(OrdersOf(spilled->queries[i].nodes),
              OrdersOf(private_run->queries[i].nodes))
        << queries[i];
  }
}

}  // namespace
}  // namespace navpath
