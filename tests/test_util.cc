#include "tests/test_util.h"

#include <deque>

namespace navpath {

Result<std::unordered_map<std::uint64_t, NodeID>> MapOrderToNodeID(
    Database* db, const ImportedDocument& doc, const DomTree& tree) {
  std::unordered_map<std::uint64_t, NodeID> by_order;
  std::deque<LogicalNode> queue;
  queue.push_back(LogicalNode{doc.root, 0, doc.root_order});
  CrossClusterCursor cursor(db);
  while (!queue.empty()) {
    const LogicalNode node = queue.front();
    queue.pop_front();
    if (!by_order.emplace(node.order, node.id).second) {
      return Status::Corruption("duplicate order key " +
                                std::to_string(node.order));
    }
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kAttribute, node.id));
    LogicalNode attr;
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&attr));
      if (!more) break;
      if (!by_order.emplace(attr.order, attr.id).second) {
        return Status::Corruption("duplicate attribute order key");
      }
    }
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kChild, node.id));
    LogicalNode child;
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&child));
      if (!more) break;
      queue.push_back(child);
    }
  }
  if (by_order.size() != tree.size()) {
    return Status::Corruption("store walk found " +
                              std::to_string(by_order.size()) +
                              " nodes, DOM has " +
                              std::to_string(tree.size()));
  }
  return by_order;
}

}  // namespace navpath
