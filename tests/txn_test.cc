// MVCC transaction subsystem tests: copy-on-write snapshot isolation,
// writer-sees-own-writes, first-committer-wins conflicts (Aborted),
// read-only snapshot rejection (InvalidArgument), version reclamation
// (including the never-free-a-pinned-frame rule), persistence of the
// versioned root, mixed read/write workloads through the executor, and a
// seeded randomized reader/writer interleaving stress.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "compiler/workload_executor.h"
#include "store/export.h"
#include "store/persistence.h"
#include "store/verify.h"
#include "tests/test_util.h"
#include "txn/txn.h"
#include "xml/parser.h"

namespace navpath {
namespace {

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  return options;
}

/// A database + imported document + transaction manager, the fixture
/// every MVCC test starts from.
struct TxnFixture {
  Database db;
  ImportedDocument doc;
  std::unique_ptr<TxnManager> mgr;

  explicit TxnFixture(const char* xml, DatabaseOptions options = SmallDb())
      : db(options) {
    auto parsed = ParseXml(xml, db.tags());
    parsed.status().AbortIfNotOk();
    DomTree tree = std::move(*parsed);
    RandomClusteringPolicy policy(options.page_size - 64, 17);
    doc = *db.Import(tree, &policy);
    mgr = std::make_unique<TxnManager>(&db, &doc);
  }

  std::string Export(const Snapshot& snap) {
    ExportOptions options;
    options.translator = &snap;
    auto exported = ExportSubtree(&db, snap.doc().root, options);
    exported.status().AbortIfNotOk();
    return *exported;
  }

  std::string ExportCurrent() {
    auto snap = mgr->OpenSnapshot();
    return Export(*snap);
  }

  /// Commits one insert under `parent` (the current version's root when
  /// invalid) and returns the commit status.
  Status CommitInsert(const char* tag, const char* text,
                      NodeID parent = kInvalidNodeID) {
    auto writer = mgr->BeginWrite();
    if (parent == kInvalidNodeID) parent = writer->doc()->root;
    auto inserted = writer->updater()->InsertElement(
        parent, kInvalidNodeID, db.tags()->Intern(tag), text);
    if (!inserted.ok()) return inserted.status();
    return writer->Commit();
  }
};

TEST(TxnTest, SnapshotIsolationAcrossCommits) {
  TxnFixture f("<r><a>one</a><b/></r>");
  const std::string v0 = f.ExportCurrent();
  auto before = f.mgr->OpenSnapshot();
  EXPECT_EQ(before->seq(), 0u);

  ASSERT_TRUE(f.CommitInsert("fresh", "payload").ok());
  EXPECT_EQ(f.mgr->current_seq(), 1u);
  EXPECT_EQ(f.mgr->commits(), 1u);

  // The pre-commit snapshot still serves the version it pinned; a new
  // snapshot sees the commit.
  EXPECT_EQ(f.Export(*before), v0);
  auto after = f.mgr->OpenSnapshot();
  EXPECT_EQ(after->seq(), 1u);
  const std::string v1 = f.Export(*after);
  EXPECT_NE(v1, v0);
  EXPECT_NE(v1.find("<fresh>payload</fresh>"), std::string::npos);

  // Two commits later the old snapshot is still byte-stable.
  ASSERT_TRUE(f.CommitInsert("more", "").ok());
  EXPECT_EQ(f.Export(*before), v0);
  EXPECT_EQ(f.Export(*after), v1);
}

TEST(TxnTest, WriterSeesOwnWritesAndAbortDiscardsThem) {
  TxnFixture f("<r><a/></r>");
  const std::string v0 = f.ExportCurrent();

  auto writer = f.mgr->BeginWrite();
  auto inserted = writer->updater()->InsertElement(
      writer->doc()->root, kInvalidNodeID, f.db.tags()->Intern("mine"), "x");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  // The writer's own translator sees the uncommitted insert; the
  // published version does not (the touched page was copied, not
  // mutated in place).
  ExportOptions through_writer;
  through_writer.translator = writer.get();
  auto own = ExportSubtree(&f.db, writer->doc()->root, through_writer);
  ASSERT_TRUE(own.ok());
  EXPECT_NE(own->find("<mine>x</mine>"), std::string::npos);
  EXPECT_EQ(f.ExportCurrent(), v0);

  ASSERT_TRUE(writer->Abort().ok());
  EXPECT_EQ(f.mgr->aborts(), 1u);
  EXPECT_EQ(f.mgr->commits(), 0u);
  EXPECT_EQ(f.mgr->current_seq(), 0u);
  EXPECT_EQ(f.ExportCurrent(), v0);
}

TEST(TxnTest, ReadOnlySnapshotRejectsWritesWithoutCrashing) {
  TxnFixture f("<r><a/></r>");
  auto snap = f.mgr->OpenSnapshot();

  // Any mutation routed through a snapshot's (read-only) page I/O must
  // surface InvalidArgument — never a CHECK, never shared-state damage.
  ImportedDocument copy = snap->doc();
  DocumentUpdater updater(&f.db, &copy, snap.get());
  auto inserted = updater.InsertElement(copy.root, kInvalidNodeID,
                                        f.db.tags()->Intern("w"), "");
  ASSERT_FALSE(inserted.ok());
  EXPECT_TRUE(inserted.status().IsInvalidArgument())
      << inserted.status().ToString();

  auto appended = snap->AppendLogicalPage();
  ASSERT_FALSE(appended.ok());
  EXPECT_TRUE(appended.status().IsInvalidArgument());

  // The store is untouched.
  auto report = VerifyStore(&f.db, f.doc);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
}

TEST(TxnTest, FirstCommitterWinsConflictAborts) {
  TxnFixture f("<r><a/></r>");
  auto first = f.mgr->BeginWrite();
  auto second = f.mgr->BeginWrite();
  ASSERT_TRUE(first->updater()
                  ->InsertElement(first->doc()->root, kInvalidNodeID,
                                  f.db.tags()->Intern("one"), "")
                  .ok());
  ASSERT_TRUE(second->updater()
                  ->InsertElement(second->doc()->root, kInvalidNodeID,
                                  f.db.tags()->Intern("two"), "")
                  .ok());

  ASSERT_TRUE(first->Commit().ok());
  const Status lost = second->Commit();
  ASSERT_FALSE(lost.ok());
  EXPECT_TRUE(lost.IsAborted()) << lost.ToString();
  EXPECT_FALSE(second->open());
  EXPECT_EQ(second->commit_seq(), 0u);
  EXPECT_EQ(f.mgr->commits(), 1u);
  EXPECT_EQ(f.mgr->aborts(), 1u);

  // A finished transaction cannot commit again.
  EXPECT_TRUE(second->Commit().IsInvalidArgument());

  // Only the winner's insert is visible.
  const std::string current = f.ExportCurrent();
  EXPECT_NE(current.find("<one/>"), std::string::npos);
  EXPECT_EQ(current.find("<two/>"), std::string::npos);
}

TEST(TxnTest, AbortedShadowPagesAreRecycled) {
  TxnFixture f("<r><a/></r>");
  {
    auto writer = f.mgr->BeginWrite();
    ASSERT_TRUE(writer->updater()
                    ->InsertElement(writer->doc()->root, kInvalidNodeID,
                                    f.db.tags()->Intern("x"), "")
                    .ok());
    ASSERT_TRUE(writer->Abort().ok());
  }
  const std::size_t pages_after_abort = f.db.disk()->num_pages();
  // The next writer's COW copies reuse the freed shadow ids instead of
  // growing the file.
  ASSERT_TRUE(f.CommitInsert("y", "").ok());
  EXPECT_EQ(f.db.disk()->num_pages(), pages_after_abort);
}

TEST(TxnTest, ReclamationWaitsForTheLastReader) {
  TxnFixture f("<r><a/></r>");
  auto pin = f.mgr->OpenSnapshot();  // seq 0, pins everything after it

  // Two commits shadowing the same root page: the second retires the
  // first commit's shadow.
  ASSERT_TRUE(f.CommitInsert("x", "").ok());
  ASSERT_TRUE(f.CommitInsert("y", "").ok());
  EXPECT_GT(f.mgr->versions_retired(), 0u);
  EXPECT_GT(f.mgr->retired_pending(), 0u);
  EXPECT_EQ(f.mgr->versions_reclaimed(), 0u);

  // Dropping the old reader drains the epoch and frees the retired
  // shadow pages.
  pin.reset();
  EXPECT_EQ(f.mgr->retired_pending(), 0u);
  EXPECT_EQ(f.mgr->versions_reclaimed(), f.mgr->versions_retired());
}

TEST(TxnTest, ReclamationNeverFreesAPinnedFrame) {
  TxnFixture f("<r><a/></r>");
  auto pin = f.mgr->OpenSnapshot();
  ASSERT_TRUE(f.CommitInsert("x", "").ok());

  // Find the shadow page the first commit mapped the root page to, and
  // pin its frame like an in-flight reader would.
  const PageId shadow =
      f.mgr->current_version()->to_physical.begin()->second;
  auto guard = f.db.buffer()->Fix(shadow);
  ASSERT_TRUE(guard.ok());

  // The second commit retires `shadow`; draining the old reader makes it
  // reclaimable — but the frame is pinned, so it must be skipped, not
  // freed under the pin.
  ASSERT_TRUE(f.CommitInsert("y", "").ok());
  pin.reset();
  EXPECT_GT(f.mgr->retired_pending(), 0u);

  // Unpin and trigger the next drain: now it frees.
  guard->Release();
  f.mgr->OpenSnapshot();  // open + release runs TryReclaim
  EXPECT_EQ(f.mgr->retired_pending(), 0u);
}

TEST(TxnTest, VersionedRootSurvivesSaveAndLoad) {
  TxnFixture f("<site><open_auctions/><people/></site>");
  ASSERT_TRUE(f.CommitInsert("bid", "99").ok());
  ASSERT_TRUE(f.CommitInsert("bid", "101").ok());
  const std::string expected = f.ExportCurrent();
  ASSERT_NE(expected.find("<bid>99</bid>"), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "/navpath_txn_roundtrip.db";
  const VersionedRootState state = f.mgr->ExportState();
  EXPECT_EQ(state.seq, 2u);
  ASSERT_TRUE(SaveDatabase(&f.db, f.mgr->current_doc(), path, &state).ok());

  auto loaded = LoadDatabase(path, SmallDb());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_txn_state);
  TxnManager restored(loaded->db.get(), &loaded->doc);
  ASSERT_TRUE(restored.RestoreState(loaded->txn_state).ok());
  EXPECT_EQ(restored.current_seq(), 2u);

  TxnFixture* reopened = nullptr;
  (void)reopened;
  auto snap = restored.OpenSnapshot();
  ExportOptions through;
  through.translator = snap.get();
  auto exported =
      ExportSubtree(loaded->db.get(), snap->doc().root, through);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(*exported, expected);

  // The restored chain keeps versioning: another commit and an old
  // snapshot behave exactly as before the round trip.
  auto pre = restored.OpenSnapshot();
  auto writer = restored.BeginWrite();
  ASSERT_TRUE(writer->updater()
                  ->InsertElement(writer->doc()->root, kInvalidNodeID,
                                  loaded->db->tags()->Intern("bid"), "7")
                  .ok());
  ASSERT_TRUE(writer->Commit().ok());
  ExportOptions through_pre;
  through_pre.translator = pre.get();
  auto unchanged =
      ExportSubtree(loaded->db.get(), pre->doc().root, through_pre);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(*unchanged, expected);
  std::remove(path.c_str());
}

// --- Mixed read/write workloads through the executor --------------------

TEST(TxnTest, AddWriteValidation) {
  TxnFixture f("<r><a/></r>");
  {
    WorkloadExecutor executor(&f.db, f.doc, {});
    EXPECT_TRUE(executor.AddWrite({WriteOp{f.doc.root}}, 0)
                    .IsInvalidArgument());  // no TxnManager configured
  }
  WorkloadOptions options;
  options.txn = f.mgr.get();
  WorkloadExecutor executor(&f.db, f.doc, options);
  EXPECT_TRUE(executor.AddWrite({}, 0).IsInvalidArgument());  // empty ops

  WorkloadOptions sharing = options;
  sharing.enable_sharing = true;
  EXPECT_TRUE(ValidateWorkloadOptions(sharing).IsInvalidArgument());
}

TEST(TxnTest, MixedWorkloadZeroWritersIsByteIdentical) {
  DatabaseOptions db_options = SmallDb();
  db_options.buffer_pages = 32;
  TxnFixture f(
      "<site><regions><item>a</item><item>b</item><item>c</item></regions>"
      "<people><person>p</person><person>q</person></people></site>",
      db_options);

  const char* queries[] = {"//item", "/site/people/person", "//regions"};
  auto run = [&](TxnManager* txn) {
    WorkloadOptions options;
    options.txn = txn;
    std::vector<std::size_t> trace;
    options.on_pull = [&trace](std::size_t job, std::size_t active) {
      trace.push_back(job * 100 + active);
    };
    WorkloadExecutor executor(&f.db, f.doc, options);
    for (const char* q : queries) {
      PlanOptions plan;
      plan.kind = PlanKind::kXSchedule;
      EXPECT_TRUE(executor.Add(q, plan).ok());
    }
    auto result = executor.Run();
    result.status().AbortIfNotOk();
    return std::make_pair(std::move(*result), std::move(trace));
  };

  auto [baseline, baseline_trace] = run(nullptr);
  auto [mvcc, mvcc_trace] = run(f.mgr.get());

  // Scheduling decisions, per-query results and the simulated makespan
  // are byte-identical: the genesis snapshot translates as identity and
  // its acquisition is host-side only.
  EXPECT_EQ(baseline_trace, mvcc_trace);
  ASSERT_EQ(baseline.queries.size(), mvcc.queries.size());
  for (std::size_t i = 0; i < baseline.queries.size(); ++i) {
    EXPECT_EQ(baseline.queries[i].count, mvcc.queries[i].count) << i;
    EXPECT_EQ(baseline.queries[i].finished_at, mvcc.queries[i].finished_at)
        << i;
    EXPECT_EQ(baseline.queries[i].pulls, mvcc.queries[i].pulls) << i;
  }
  EXPECT_EQ(baseline.total_time, mvcc.total_time);
}

TEST(TxnTest, MixedWorkloadReadersSeeConsistentVersions) {
  TxnFixture f(
      "<site><auctions><lot>1</lot><lot>2</lot></auctions></site>");
  const TagId bid = f.db.tags()->Intern("bid");

  WorkloadOptions options;
  options.txn = f.mgr.get();
  options.max_concurrent = 4;
  WorkloadExecutor executor(&f.db, f.doc, options);

  // Interleave scans over //bid with writer transactions appending bids.
  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());
  ASSERT_TRUE(
      executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, bid, "b0"}}, 0)
          .ok());
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());
  ASSERT_TRUE(
      executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, bid, "b1"},
                         WriteOp{f.doc.root, kInvalidNodeID, bid, "b2"}},
                        0)
          .ok());
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());

  auto result = executor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::uint64_t commits_seen = 0;
  std::uint64_t writes_total = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> commits;  // seq,size
  for (const WorkloadQueryResult& q : result->queries) {
    if (!q.is_write) continue;
    ASSERT_TRUE(q.status.ok()) << q.status.ToString();
    EXPECT_GT(q.commit_seq, 0u);
    commits.emplace_back(q.commit_seq, q.writes_applied);
    ++commits_seen;
    writes_total += q.writes_applied;
  }
  EXPECT_EQ(commits_seen, 2u);
  EXPECT_EQ(writes_total, 3u);
  EXPECT_EQ(f.mgr->commits(), 2u);

  // Snapshot consistency: each reader's count equals the bids inserted
  // by commits at or before its snapshot — no torn reads, no phantom
  // from a later commit.
  for (const WorkloadQueryResult& q : result->queries) {
    if (q.is_write) continue;
    ASSERT_TRUE(q.status.ok()) << q.status.ToString();
    std::uint64_t expected = 0;
    for (const auto& [seq, size] : commits) {
      if (seq <= q.snapshot_seq) expected += size;
    }
    EXPECT_EQ(q.count, expected) << "snapshot seq " << q.snapshot_seq;
  }

  // The canonical document reflects the final version.
  EXPECT_EQ(f.mgr->current_seq(), 2u);
  const std::string final_doc = f.ExportCurrent();
  EXPECT_NE(final_doc.find("<bid>b2</bid>"), std::string::npos);
}

// --- Seeded randomized reader/writer interleaving stress -----------------

class TxnStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnStress, ReadersAlwaysSeeTheirSnapshot) {
  TxnFixture f("<r><a>seed</a><b/><c><d/></c></r>");
  Random rng(GetParam());
  const TagId tags[] = {f.db.tags()->Intern("u"), f.db.tags()->Intern("v"),
                        f.db.tags()->Intern("w")};

  struct PinnedReader {
    std::shared_ptr<Snapshot> snap;
    std::string expected;
  };
  std::vector<PinnedReader> readers;
  int commits = 0;

  for (int step = 0; step < 60; ++step) {
    const std::uint32_t dice = rng.NextBounded(10);
    if (dice < 4) {
      // Open a reader and record the document it must keep seeing.
      PinnedReader reader;
      reader.snap = f.mgr->OpenSnapshot();
      reader.expected = f.Export(*reader.snap);
      readers.push_back(std::move(reader));
    } else if (dice < 8) {
      // Writer: insert 1-3 nodes under a random element of its own
      // (uncommitted) view, then commit or — rarely — abort.
      auto writer = f.mgr->BeginWrite();
      const int n = 1 + static_cast<int>(rng.NextBounded(3));
      bool ok = true;
      for (int i = 0; i < n && ok; ++i) {
        // NodeIDs are physical and may be relocated by the page splits an
        // insert can trigger — re-collect the candidate parents before
        // every insert instead of holding them across mutations.
        std::vector<NodeID> elements{writer->doc()->root};
        CrossClusterCursor cursor(&f.db, writer.get());
        cursor.Start(Axis::kDescendant, writer->doc()->root).AbortIfNotOk();
        LogicalNode node;
        for (;;) {
          auto more = cursor.Next(&node);
          more.status().AbortIfNotOk();
          if (!*more) break;
          elements.push_back(node.id);
        }
        const NodeID parent = elements[rng.NextBounded(elements.size())];
        auto inserted = writer->updater()->InsertElement(
            parent, kInvalidNodeID, tags[rng.NextBounded(3)],
            rng.NextBool(0.5) ? "t" : "");
        ok = inserted.ok();
        ASSERT_TRUE(ok) << inserted.status().ToString();
      }
      if (rng.NextBool(0.15)) {
        ASSERT_TRUE(writer->Abort().ok());
      } else {
        ASSERT_TRUE(writer->Commit().ok());
        ++commits;
      }
    } else if (!readers.empty()) {
      // Close a random reader, verifying its view one last time.
      const std::size_t pick = rng.NextBounded(readers.size());
      EXPECT_EQ(f.Export(*readers[pick].snap), readers[pick].expected)
          << "seed " << GetParam() << " step " << step;
      readers.erase(readers.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // Every live reader still sees exactly its snapshot's document —
    // commits, aborts and reclamation never disturb a pinned version.
    if (step % 7 == 6) {
      for (const PinnedReader& reader : readers) {
        ASSERT_EQ(f.Export(*reader.snap), reader.expected)
            << "seed " << GetParam() << " step " << step;
      }
    }
  }

  for (const PinnedReader& reader : readers) {
    EXPECT_EQ(f.Export(*reader.snap), reader.expected);
  }
  readers.clear();

  // All readers drained: every retired version must now be reclaimed
  // (no buffer pins are held here), and the chain head is intact.
  EXPECT_EQ(f.mgr->retired_pending(), 0u);
  EXPECT_EQ(f.mgr->versions_reclaimed(), f.mgr->versions_retired());
  EXPECT_EQ(f.mgr->commits(), static_cast<std::uint64_t>(commits));
  EXPECT_EQ(f.ExportCurrent(), f.ExportCurrent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnStress,
                         ::testing::Values(1u, 42u, 1234u, 98765u));

}  // namespace
}  // namespace navpath
