// MVCC transaction subsystem tests: copy-on-write snapshot isolation,
// writer-sees-own-writes, first-committer-wins conflicts (Aborted),
// read-only snapshot rejection (InvalidArgument), version reclamation
// (including the never-free-a-pinned-frame rule), persistence of the
// versioned root, mixed read/write workloads through the executor, and a
// seeded randomized reader/writer interleaving stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "compiler/workload_executor.h"
#include "store/export.h"
#include "store/persistence.h"
#include "store/verify.h"
#include "tests/test_util.h"
#include "txn/txn.h"
#include "xml/parser.h"

namespace navpath {
namespace {

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  return options;
}

/// A database + imported document + transaction manager, the fixture
/// every MVCC test starts from.
struct TxnFixture {
  Database db;
  ImportedDocument doc;
  std::unique_ptr<TxnManager> mgr;

  explicit TxnFixture(const char* xml, DatabaseOptions options = SmallDb())
      : db(options) {
    auto parsed = ParseXml(xml, db.tags());
    parsed.status().AbortIfNotOk();
    DomTree tree = std::move(*parsed);
    RandomClusteringPolicy policy(options.page_size - 64, 17);
    doc = *db.Import(tree, &policy);
    mgr = std::make_unique<TxnManager>(&db, &doc);
  }

  std::string Export(const Snapshot& snap) {
    ExportOptions options;
    options.translator = &snap;
    auto exported = ExportSubtree(&db, snap.doc().root, options);
    exported.status().AbortIfNotOk();
    return *exported;
  }

  std::string ExportCurrent() {
    auto snap = mgr->OpenSnapshot();
    return Export(*snap);
  }

  /// Commits one insert under `parent` (the current version's root when
  /// invalid) and returns the commit status.
  Status CommitInsert(const char* tag, const char* text,
                      NodeID parent = kInvalidNodeID) {
    auto writer = mgr->BeginWrite();
    if (parent == kInvalidNodeID) parent = writer->doc()->root;
    auto inserted = writer->updater()->InsertElement(
        parent, kInvalidNodeID, db.tags()->Intern(tag), text);
    if (!inserted.ok()) return inserted.status();
    return writer->Commit();
  }
};

TEST(TxnTest, SnapshotIsolationAcrossCommits) {
  TxnFixture f("<r><a>one</a><b/></r>");
  const std::string v0 = f.ExportCurrent();
  auto before = f.mgr->OpenSnapshot();
  EXPECT_EQ(before->seq(), 0u);

  ASSERT_TRUE(f.CommitInsert("fresh", "payload").ok());
  EXPECT_EQ(f.mgr->current_seq(), 1u);
  EXPECT_EQ(f.mgr->commits(), 1u);

  // The pre-commit snapshot still serves the version it pinned; a new
  // snapshot sees the commit.
  EXPECT_EQ(f.Export(*before), v0);
  auto after = f.mgr->OpenSnapshot();
  EXPECT_EQ(after->seq(), 1u);
  const std::string v1 = f.Export(*after);
  EXPECT_NE(v1, v0);
  EXPECT_NE(v1.find("<fresh>payload</fresh>"), std::string::npos);

  // Two commits later the old snapshot is still byte-stable.
  ASSERT_TRUE(f.CommitInsert("more", "").ok());
  EXPECT_EQ(f.Export(*before), v0);
  EXPECT_EQ(f.Export(*after), v1);
}

TEST(TxnTest, WriterSeesOwnWritesAndAbortDiscardsThem) {
  TxnFixture f("<r><a/></r>");
  const std::string v0 = f.ExportCurrent();

  auto writer = f.mgr->BeginWrite();
  auto inserted = writer->updater()->InsertElement(
      writer->doc()->root, kInvalidNodeID, f.db.tags()->Intern("mine"), "x");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  // The writer's own translator sees the uncommitted insert; the
  // published version does not (the touched page was copied, not
  // mutated in place).
  ExportOptions through_writer;
  through_writer.translator = writer.get();
  auto own = ExportSubtree(&f.db, writer->doc()->root, through_writer);
  ASSERT_TRUE(own.ok());
  EXPECT_NE(own->find("<mine>x</mine>"), std::string::npos);
  EXPECT_EQ(f.ExportCurrent(), v0);

  ASSERT_TRUE(writer->Abort().ok());
  EXPECT_EQ(f.mgr->aborts(), 1u);
  EXPECT_EQ(f.mgr->commits(), 0u);
  EXPECT_EQ(f.mgr->current_seq(), 0u);
  EXPECT_EQ(f.ExportCurrent(), v0);
}

TEST(TxnTest, ReadOnlySnapshotRejectsWritesWithoutCrashing) {
  TxnFixture f("<r><a/></r>");
  auto snap = f.mgr->OpenSnapshot();

  // Any mutation routed through a snapshot's (read-only) page I/O must
  // surface InvalidArgument — never a CHECK, never shared-state damage.
  ImportedDocument copy = snap->doc();
  DocumentUpdater updater(&f.db, &copy, snap.get());
  auto inserted = updater.InsertElement(copy.root, kInvalidNodeID,
                                        f.db.tags()->Intern("w"), "");
  ASSERT_FALSE(inserted.ok());
  EXPECT_TRUE(inserted.status().IsInvalidArgument())
      << inserted.status().ToString();

  auto appended = snap->AppendLogicalPage();
  ASSERT_FALSE(appended.ok());
  EXPECT_TRUE(appended.status().IsInvalidArgument());

  // The store is untouched.
  auto report = VerifyStore(&f.db, f.doc);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
}

TEST(TxnTest, FirstCommitterWinsConflictAborts) {
  TxnFixture f("<r><a/></r>");
  auto first = f.mgr->BeginWrite();
  auto second = f.mgr->BeginWrite();
  ASSERT_TRUE(first->updater()
                  ->InsertElement(first->doc()->root, kInvalidNodeID,
                                  f.db.tags()->Intern("one"), "")
                  .ok());
  ASSERT_TRUE(second->updater()
                  ->InsertElement(second->doc()->root, kInvalidNodeID,
                                  f.db.tags()->Intern("two"), "")
                  .ok());

  ASSERT_TRUE(first->Commit().ok());
  const Status lost = second->Commit();
  ASSERT_FALSE(lost.ok());
  EXPECT_TRUE(lost.IsAborted()) << lost.ToString();
  EXPECT_FALSE(second->open());
  EXPECT_EQ(second->commit_seq(), 0u);
  EXPECT_EQ(f.mgr->commits(), 1u);
  EXPECT_EQ(f.mgr->aborts(), 1u);

  // A finished transaction cannot commit again.
  EXPECT_TRUE(second->Commit().IsInvalidArgument());

  // Only the winner's insert is visible.
  const std::string current = f.ExportCurrent();
  EXPECT_NE(current.find("<one/>"), std::string::npos);
  EXPECT_EQ(current.find("<two/>"), std::string::npos);
}

TEST(TxnTest, AbortedShadowPagesAreRecycled) {
  TxnFixture f("<r><a/></r>");
  {
    auto writer = f.mgr->BeginWrite();
    ASSERT_TRUE(writer->updater()
                    ->InsertElement(writer->doc()->root, kInvalidNodeID,
                                    f.db.tags()->Intern("x"), "")
                    .ok());
    ASSERT_TRUE(writer->Abort().ok());
  }
  const std::size_t pages_after_abort = f.db.disk()->num_pages();
  // The next writer's COW copies reuse the freed shadow ids instead of
  // growing the file.
  ASSERT_TRUE(f.CommitInsert("y", "").ok());
  EXPECT_EQ(f.db.disk()->num_pages(), pages_after_abort);
}

TEST(TxnTest, ReclamationWaitsForTheLastReader) {
  TxnFixture f("<r><a/></r>");
  auto pin = f.mgr->OpenSnapshot();  // seq 0, pins everything after it

  // Two commits shadowing the same root page: the second retires the
  // first commit's shadow.
  ASSERT_TRUE(f.CommitInsert("x", "").ok());
  ASSERT_TRUE(f.CommitInsert("y", "").ok());
  EXPECT_GT(f.mgr->versions_retired(), 0u);
  EXPECT_GT(f.mgr->retired_pending(), 0u);
  EXPECT_EQ(f.mgr->versions_reclaimed(), 0u);

  // Dropping the old reader drains the epoch and frees the retired
  // shadow pages.
  pin.reset();
  EXPECT_EQ(f.mgr->retired_pending(), 0u);
  EXPECT_EQ(f.mgr->versions_reclaimed(), f.mgr->versions_retired());
}

TEST(TxnTest, ReclamationNeverFreesAPinnedFrame) {
  TxnFixture f("<r><a/></r>");
  auto pin = f.mgr->OpenSnapshot();
  ASSERT_TRUE(f.CommitInsert("x", "").ok());

  // Find the shadow page the first commit mapped the root page to, and
  // pin its frame like an in-flight reader would.
  const PageId shadow =
      f.mgr->current_version()->to_physical.begin()->second;
  auto guard = f.db.buffer()->Fix(shadow);
  ASSERT_TRUE(guard.ok());

  // The second commit retires `shadow`; draining the old reader makes it
  // reclaimable — but the frame is pinned, so it must be skipped, not
  // freed under the pin.
  ASSERT_TRUE(f.CommitInsert("y", "").ok());
  pin.reset();
  EXPECT_GT(f.mgr->retired_pending(), 0u);

  // Regression: the unpin itself must drain the stalled retiree. Before
  // the buffer-manager unpin listener, the freed page sat in the retired
  // list until some unrelated snapshot open/close happened to run
  // TryReclaim — a quiescent store leaked the shadow indefinitely.
  guard->Release();
  EXPECT_EQ(f.mgr->retired_pending(), 0u);
  EXPECT_EQ(f.mgr->versions_reclaimed(), f.mgr->versions_retired());
}

TEST(TxnTest, UnpinAfterLastSnapshotReleaseDrainsRetirees) {
  // The stall in its purest form: the pinned frame is released *after*
  // the last snapshot is gone, so no future snapshot event exists to
  // nudge reclamation — the unpin is the only remaining trigger.
  TxnFixture f("<r><a/></r>");
  ASSERT_TRUE(f.CommitInsert("x", "").ok());
  const PageId shadow =
      f.mgr->current_version()->to_physical.begin()->second;
  auto guard = f.db.buffer()->Fix(shadow);
  ASSERT_TRUE(guard.ok());

  {
    auto pin = f.mgr->OpenSnapshot();
    ASSERT_TRUE(f.CommitInsert("y", "").ok());
  }  // last snapshot released here, with the frame still pinned
  EXPECT_GT(f.mgr->retired_pending(), 0u);

  guard->Release();
  EXPECT_EQ(f.mgr->retired_pending(), 0u);
  EXPECT_EQ(f.mgr->versions_reclaimed(), f.mgr->versions_retired());
}

TEST(TxnTest, VersionedRootSurvivesSaveAndLoad) {
  TxnFixture f("<site><open_auctions/><people/></site>");
  ASSERT_TRUE(f.CommitInsert("bid", "99").ok());
  ASSERT_TRUE(f.CommitInsert("bid", "101").ok());
  const std::string expected = f.ExportCurrent();
  ASSERT_NE(expected.find("<bid>99</bid>"), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "/navpath_txn_roundtrip.db";
  const VersionedRootState state = f.mgr->ExportState();
  EXPECT_EQ(state.seq, 2u);
  ASSERT_TRUE(SaveDatabase(&f.db, f.mgr->current_doc(), path, &state).ok());

  auto loaded = LoadDatabase(path, SmallDb());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_txn_state);
  TxnManager restored(loaded->db.get(), &loaded->doc);
  ASSERT_TRUE(restored.RestoreState(loaded->txn_state).ok());
  EXPECT_EQ(restored.current_seq(), 2u);

  TxnFixture* reopened = nullptr;
  (void)reopened;
  auto snap = restored.OpenSnapshot();
  ExportOptions through;
  through.translator = snap.get();
  auto exported =
      ExportSubtree(loaded->db.get(), snap->doc().root, through);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(*exported, expected);

  // The restored chain keeps versioning: another commit and an old
  // snapshot behave exactly as before the round trip.
  auto pre = restored.OpenSnapshot();
  auto writer = restored.BeginWrite();
  ASSERT_TRUE(writer->updater()
                  ->InsertElement(writer->doc()->root, kInvalidNodeID,
                                  loaded->db->tags()->Intern("bid"), "7")
                  .ok());
  ASSERT_TRUE(writer->Commit().ok());
  ExportOptions through_pre;
  through_pre.translator = pre.get();
  auto unchanged =
      ExportSubtree(loaded->db.get(), pre->doc().root, through_pre);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(*unchanged, expected);
  std::remove(path.c_str());
}

// --- Mixed read/write workloads through the executor --------------------

TEST(TxnTest, AddWriteValidation) {
  TxnFixture f("<r><a/></r>");
  {
    WorkloadExecutor executor(&f.db, f.doc, {});
    EXPECT_TRUE(executor.AddWrite({WriteOp{f.doc.root}}, 0)
                    .IsInvalidArgument());  // no TxnManager configured
  }
  WorkloadOptions options;
  options.txn = f.mgr.get();
  WorkloadExecutor executor(&f.db, f.doc, options);
  EXPECT_TRUE(executor.AddWrite({}, 0).IsInvalidArgument());  // empty ops

  WorkloadOptions sharing = options;
  sharing.enable_sharing = true;
  const Status sharing_status = ValidateWorkloadOptions(sharing);
  EXPECT_TRUE(sharing_status.IsInvalidArgument());
  // The rejection must explain itself, not just fail.
  EXPECT_NE(sharing_status.ToString().find("sharing"), std::string::npos)
      << sharing_status.ToString();

  WorkloadOptions no_writers = options;
  no_writers.max_writers = 0;
  EXPECT_TRUE(ValidateWorkloadOptions(no_writers).IsInvalidArgument());

  WorkloadOptions empty_batch = options;
  empty_batch.writer_batch = 0;
  EXPECT_TRUE(ValidateWorkloadOptions(empty_batch).IsInvalidArgument());
}

TEST(TxnTest, MixedWorkloadZeroWritersIsByteIdentical) {
  DatabaseOptions db_options = SmallDb();
  db_options.buffer_pages = 32;
  TxnFixture f(
      "<site><regions><item>a</item><item>b</item><item>c</item></regions>"
      "<people><person>p</person><person>q</person></people></site>",
      db_options);

  const char* queries[] = {"//item", "/site/people/person", "//regions"};
  auto run = [&](TxnManager* txn) {
    WorkloadOptions options;
    options.txn = txn;
    std::vector<std::size_t> trace;
    options.on_pull = [&trace](std::size_t job, std::size_t active) {
      trace.push_back(job * 100 + active);
    };
    WorkloadExecutor executor(&f.db, f.doc, options);
    for (const char* q : queries) {
      PlanOptions plan;
      plan.kind = PlanKind::kXSchedule;
      EXPECT_TRUE(executor.Add(q, plan).ok());
    }
    auto result = executor.Run();
    result.status().AbortIfNotOk();
    return std::make_pair(std::move(*result), std::move(trace));
  };

  auto [baseline, baseline_trace] = run(nullptr);
  auto [mvcc, mvcc_trace] = run(f.mgr.get());

  // Scheduling decisions, per-query results and the simulated makespan
  // are byte-identical: the genesis snapshot translates as identity and
  // its acquisition is host-side only.
  EXPECT_EQ(baseline_trace, mvcc_trace);
  ASSERT_EQ(baseline.queries.size(), mvcc.queries.size());
  for (std::size_t i = 0; i < baseline.queries.size(); ++i) {
    EXPECT_EQ(baseline.queries[i].count, mvcc.queries[i].count) << i;
    EXPECT_EQ(baseline.queries[i].finished_at, mvcc.queries[i].finished_at)
        << i;
    EXPECT_EQ(baseline.queries[i].pulls, mvcc.queries[i].pulls) << i;
  }
  EXPECT_EQ(baseline.total_time, mvcc.total_time);
}

TEST(TxnTest, MixedWorkloadReadersSeeConsistentVersions) {
  TxnFixture f(
      "<site><auctions><lot>1</lot><lot>2</lot></auctions></site>");
  const TagId bid = f.db.tags()->Intern("bid");

  WorkloadOptions options;
  options.txn = f.mgr.get();
  options.max_concurrent = 4;
  WorkloadExecutor executor(&f.db, f.doc, options);

  // Interleave scans over //bid with writer transactions appending bids.
  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());
  ASSERT_TRUE(
      executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, bid, "b0"}}, 0)
          .ok());
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());
  ASSERT_TRUE(
      executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, bid, "b1"},
                         WriteOp{f.doc.root, kInvalidNodeID, bid, "b2"}},
                        0)
          .ok());
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());

  auto result = executor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::uint64_t commits_seen = 0;
  std::uint64_t writes_total = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> commits;  // seq,size
  for (const WorkloadQueryResult& q : result->queries) {
    if (!q.is_write) continue;
    ASSERT_TRUE(q.status.ok()) << q.status.ToString();
    EXPECT_GT(q.commit_seq, 0u);
    commits.emplace_back(q.commit_seq, q.writes_applied);
    ++commits_seen;
    writes_total += q.writes_applied;
  }
  EXPECT_EQ(commits_seen, 2u);
  EXPECT_EQ(writes_total, 3u);
  EXPECT_EQ(f.mgr->commits(), 2u);

  // Snapshot consistency: each reader's count equals the bids inserted
  // by commits at or before its snapshot — no torn reads, no phantom
  // from a later commit.
  for (const WorkloadQueryResult& q : result->queries) {
    if (q.is_write) continue;
    ASSERT_TRUE(q.status.ok()) << q.status.ToString();
    std::uint64_t expected = 0;
    for (const auto& [seq, size] : commits) {
      if (seq <= q.snapshot_seq) expected += size;
    }
    EXPECT_EQ(q.count, expected) << "snapshot seq " << q.snapshot_seq;
  }

  // The canonical document reflects the final version.
  EXPECT_EQ(f.mgr->current_seq(), 2u);
  const std::string final_doc = f.ExportCurrent();
  EXPECT_NE(final_doc.find("<bid>b2</bid>"), std::string::npos);
}

TEST(TxnTest, ConcurrentWritersRetryAfterConflictAndBothCommit) {
  TxnFixture f("<r><a/></r>");
  const TagId one = f.db.tags()->Intern("one");
  const TagId two = f.db.tags()->Intern("two");

  WorkloadOptions options;
  options.txn = f.mgr.get();
  options.max_concurrent = 4;
  options.max_writers = 2;
  WorkloadExecutor executor(&f.db, f.doc, options);
  ASSERT_TRUE(executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, one}}, 0)
                  .ok());
  ASSERT_TRUE(executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, two}}, 0)
                  .ok());

  auto result = executor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Both writers were admitted optimistically against the same base
  // version and both touch the root's page, so exactly one loses the
  // first-committer race, retries against the new head, and commits.
  std::vector<std::uint64_t> seqs;
  std::uint64_t aborts_total = 0;
  for (const WorkloadQueryResult& q : result->queries) {
    ASSERT_TRUE(q.is_write);
    ASSERT_TRUE(q.status.ok()) << q.status.ToString();
    EXPECT_FALSE(q.degraded);
    seqs.push_back(q.commit_seq);
    aborts_total += q.aborts;
    // The committed attempt's base is the version just below its commit.
    EXPECT_EQ(q.snapshot_seq + 1, q.commit_seq);
  }
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(aborts_total, 1u);
  EXPECT_EQ(f.mgr->commits(), 2u);
  EXPECT_EQ(f.mgr->aborts(), 1u);

  const std::string current = f.ExportCurrent();
  EXPECT_NE(current.find("<one/>"), std::string::npos);
  EXPECT_NE(current.find("<two/>"), std::string::npos);
}

TEST(TxnTest, WriterRetryExhaustionFailsWithAborted) {
  TxnFixture f("<r><a/></r>");
  const TagId tag = f.db.tags()->Intern("t");

  WorkloadOptions options;
  options.txn = f.mgr.get();
  options.max_concurrent = 4;
  options.max_writers = 2;
  options.writer_max_retries = 0;  // lose the race once -> fail for good
  WorkloadExecutor executor(&f.db, f.doc, options);
  ASSERT_TRUE(executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, tag}}, 0)
                  .ok());
  ASSERT_TRUE(executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, tag}}, 0)
                  .ok());

  auto result = executor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::size_t committed = 0, failed = 0;
  for (const WorkloadQueryResult& q : result->queries) {
    if (q.status.ok()) {
      EXPECT_GT(q.commit_seq, 0u);
      ++committed;
    } else {
      EXPECT_TRUE(q.status.IsAborted()) << q.status.ToString();
      EXPECT_EQ(q.commit_seq, 0u);
      ++failed;
    }
  }
  EXPECT_EQ(committed, 1u);
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(f.mgr->commits(), 1u);
  EXPECT_EQ(f.mgr->aborts(), 1u);
}

TEST(TxnTest, GroupCommitAmortizesPullsOverTheBatch) {
  const std::size_t kOps = 4;
  auto run = [&](std::size_t batch) {
    TxnFixture f("<r><a/></r>");
    const TagId tag = f.db.tags()->Intern("t");
    WorkloadOptions options;
    options.txn = f.mgr.get();
    options.writer_batch = batch;
    WorkloadExecutor executor(&f.db, f.doc, options);
    std::vector<WriteOp> ops;
    for (std::size_t i = 0; i < kOps; ++i) {
      ops.push_back(WriteOp{f.doc.root, kInvalidNodeID, tag, "x"});
    }
    ASSERT_TRUE(executor.AddWrite(std::move(ops), 0).ok())
        << "batch " << batch;
    auto result = executor.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const WorkloadQueryResult& q = result->queries[0];
    ASSERT_TRUE(q.status.ok()) << q.status.ToString();
    EXPECT_EQ(q.writes_applied, kOps);
    EXPECT_EQ(q.commit_seq, 1u);
    // ceil(ops/batch) apply pulls plus one commit pull.
    const std::uint64_t expected_pulls = (kOps + batch - 1) / batch + 1;
    EXPECT_EQ(q.pulls, expected_pulls) << "batch " << batch;
  };
  run(1);  // historical one-op-per-pull shape
  run(2);
  run(4);  // whole transaction in one pull, commit on the next
}

TEST(TxnTest, ExecutorDeletesKeepSummariesExact) {
  TxnFixture f(
      "<site><auctions><lot>1</lot><lot>2</lot></auctions></site>");
  const TagId bid = f.db.tags()->Intern("bid");
  ASSERT_NE(f.db.shared_summary(), nullptr);

  WorkloadOptions options;
  options.txn = f.mgr.get();
  options.max_concurrent = 4;
  WorkloadExecutor executor(&f.db, f.doc, options);
  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;

  // Inserts with after == kInvalidNodeID prepend, so root's bid children
  // run newest-first and "last child tagged bid" is the OLDEST bid.
  // Writer 1: +b0 +b1 -oldest(b0) => b1 survives, net one. Writer 2
  // (base is the first commit): +b2 -oldest(b1) +b3 => net one more —
  // its delete resolves through its own translator over the committed
  // base, removing writer 1's b1.
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());
  ASSERT_TRUE(
      executor
          .AddWrite({WriteOp{f.doc.root, kInvalidNodeID, bid, "b0"},
                     WriteOp{f.doc.root, kInvalidNodeID, bid, "b1"},
                     WriteOp{f.doc.root, kInvalidNodeID, bid, "",
                             {}, WriteOp::Kind::kDelete}},
                    0)
          .ok());
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());
  ASSERT_TRUE(
      executor
          .AddWrite({WriteOp{f.doc.root, kInvalidNodeID, bid, "b2"},
                     WriteOp{f.doc.root, kInvalidNodeID, bid, "",
                             {}, WriteOp::Kind::kDelete},
                     WriteOp{f.doc.root, kInvalidNodeID, bid, "b3"}},
                    0)
          .ok());
  ASSERT_TRUE(executor.Add("//bid", plan, 0).ok());

  auto result = executor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Per-commit net bid deltas, keyed by commit seq.
  std::vector<std::pair<std::uint64_t, std::int64_t>> deltas;
  for (const WorkloadQueryResult& q : result->queries) {
    if (!q.is_write) continue;
    ASSERT_TRUE(q.status.ok()) << q.status.ToString();
    EXPECT_GT(q.deletes_applied, 0u);
    deltas.emplace_back(q.commit_seq,
                        static_cast<std::int64_t>(q.writes_applied) -
                            static_cast<std::int64_t>(q.deletes_applied));
  }
  ASSERT_EQ(deltas.size(), 2u);

  // Snapshot consistency with deletes: a reader counts exactly the net
  // inserts of commits at or before its pinned version.
  for (const WorkloadQueryResult& q : result->queries) {
    if (q.is_write) continue;
    ASSERT_TRUE(q.status.ok()) << q.status.ToString();
    std::int64_t expected = 0;
    for (const auto& [seq, delta] : deltas) {
      if (seq <= q.snapshot_seq) expected += delta;
    }
    EXPECT_EQ(static_cast<std::int64_t>(q.count), expected)
        << "snapshot seq " << q.snapshot_seq;
  }

  // Insert/delete-only transactions maintain their version's summary by
  // deltas — no commit published a degraded (summary-less) version.
  EXPECT_EQ(f.mgr->summary_degrades(), 0u);
  const std::string current = f.ExportCurrent();
  EXPECT_NE(current.find("<bid>b2</bid>"), std::string::npos);
  EXPECT_NE(current.find("<bid>b3</bid>"), std::string::npos);
  EXPECT_EQ(current.find("<bid>b0</bid>"), std::string::npos);
  EXPECT_EQ(current.find("<bid>b1</bid>"), std::string::npos);
}

TEST(TxnTest, DeleteWithoutMatchingChildFailsThatJobAlone) {
  TxnFixture f("<r><a/></r>");
  const TagId missing = f.db.tags()->Intern("nope");

  WorkloadOptions options;
  options.txn = f.mgr.get();
  WorkloadExecutor executor(&f.db, f.doc, options);
  PlanOptions plan;
  plan.kind = PlanKind::kSimple;
  ASSERT_TRUE(executor.Add("//a", plan, 0).ok());
  ASSERT_TRUE(executor
                  .AddWrite({WriteOp{f.doc.root, kInvalidNodeID, missing, "",
                                     {}, WriteOp::Kind::kDelete}},
                            0)
                  .ok());

  auto result = executor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const WorkloadQueryResult& writer = result->queries[1];
  ASSERT_TRUE(writer.is_write);
  EXPECT_TRUE(writer.status.IsInvalidArgument())
      << writer.status.ToString();
  EXPECT_EQ(writer.commit_seq, 0u);
  // The reader is unharmed and the store saw a clean abort, not a commit.
  EXPECT_TRUE(result->queries[0].status.ok());
  EXPECT_EQ(f.mgr->commits(), 0u);
  EXPECT_EQ(f.mgr->aborts(), 1u);
}

TEST(TxnTest, RetierNeverTouchesAWriterEvenMidRetry) {
  TxnFixture f("<r><a/></r>");
  const TagId tag = f.db.tags()->Intern("t");

  WorkloadOptions options;
  options.txn = f.mgr.get();
  options.max_writers = 2;
  WorkloadExecutor executor(&f.db, f.doc, options);
  ASSERT_TRUE(executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, tag}}, 0)
                  .ok());
  ASSERT_TRUE(executor.AddWrite({WriteOp{f.doc.root, kInvalidNodeID, tag}}, 0)
                  .ok());

  ASSERT_TRUE(executor.BeginStepping(2).ok());
  ASSERT_TRUE(executor.ActivateJob(0).ok());
  ASSERT_TRUE(executor.ActivateJob(1).ok());

  // An activated (in-flight) writer can never be re-tiered.
  PlanOptions degraded;
  degraded.kind = PlanKind::kSimple;
  Status retier = executor.RetierJob(0, degraded);
  ASSERT_TRUE(retier.IsInvalidArgument());
  EXPECT_NE(retier.ToString().find("no plan tier"), std::string::npos)
      << retier.ToString();

  // Step until one writer loses the first-committer race; while it is
  // backing off for a retry it is STILL a write job to overload control,
  // and the rejection must be the write-specific one (not "job already
  // started", which would imply an idle job that could be re-planned).
  bool saw_mid_retry_rejection = false;
  for (int step = 0; step < 64; ++step) {
    auto done = executor.StepOnce();
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    for (std::size_t j = 0; j < 2; ++j) {
      const WorkloadQueryResult& r = executor.JobResult(j);
      if (r.aborts > 0 && r.commit_seq == 0 && r.status.ok()) {
        Status mid = executor.RetierJob(j, degraded);
        ASSERT_TRUE(mid.IsInvalidArgument());
        EXPECT_NE(mid.ToString().find("no plan tier"), std::string::npos)
            << mid.ToString();
        saw_mid_retry_rejection = true;
      }
    }
    if (executor.JobResult(0).commit_seq > 0 &&
        executor.JobResult(1).commit_seq > 0) {
      break;
    }
  }
  EXPECT_TRUE(saw_mid_retry_rejection);

  auto result = executor.EndStepping();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const WorkloadQueryResult& q : result->queries) {
    EXPECT_TRUE(q.status.ok()) << q.status.ToString();
    EXPECT_FALSE(q.degraded);
  }
  EXPECT_EQ(f.mgr->commits(), 2u);
}

// --- Seeded randomized reader/writer interleaving stress -----------------

class TxnStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnStress, ReadersAlwaysSeeTheirSnapshot) {
  TxnFixture f("<r><a>seed</a><b/><c><d/></c></r>");
  Random rng(GetParam());
  const TagId tags[] = {f.db.tags()->Intern("u"), f.db.tags()->Intern("v"),
                        f.db.tags()->Intern("w")};

  struct PinnedReader {
    std::shared_ptr<Snapshot> snap;
    std::string expected;
  };
  std::vector<PinnedReader> readers;
  int commits = 0;

  for (int step = 0; step < 60; ++step) {
    const std::uint32_t dice = rng.NextBounded(10);
    if (dice < 4) {
      // Open a reader and record the document it must keep seeing.
      PinnedReader reader;
      reader.snap = f.mgr->OpenSnapshot();
      reader.expected = f.Export(*reader.snap);
      readers.push_back(std::move(reader));
    } else if (dice < 8) {
      // Writer: insert 1-3 nodes under a random element of its own
      // (uncommitted) view, then commit or — rarely — abort.
      auto writer = f.mgr->BeginWrite();
      const int n = 1 + static_cast<int>(rng.NextBounded(3));
      bool ok = true;
      for (int i = 0; i < n && ok; ++i) {
        // NodeIDs are physical and may be relocated by the page splits an
        // insert can trigger — re-collect the candidate parents before
        // every insert instead of holding them across mutations.
        std::vector<NodeID> elements{writer->doc()->root};
        CrossClusterCursor cursor(&f.db, writer.get());
        cursor.Start(Axis::kDescendant, writer->doc()->root).AbortIfNotOk();
        LogicalNode node;
        for (;;) {
          auto more = cursor.Next(&node);
          more.status().AbortIfNotOk();
          if (!*more) break;
          elements.push_back(node.id);
        }
        const NodeID parent = elements[rng.NextBounded(elements.size())];
        auto inserted = writer->updater()->InsertElement(
            parent, kInvalidNodeID, tags[rng.NextBounded(3)],
            rng.NextBool(0.5) ? "t" : "");
        ok = inserted.ok();
        ASSERT_TRUE(ok) << inserted.status().ToString();
      }
      if (rng.NextBool(0.15)) {
        ASSERT_TRUE(writer->Abort().ok());
      } else {
        ASSERT_TRUE(writer->Commit().ok());
        ++commits;
      }
    } else if (!readers.empty()) {
      // Close a random reader, verifying its view one last time.
      const std::size_t pick = rng.NextBounded(readers.size());
      EXPECT_EQ(f.Export(*readers[pick].snap), readers[pick].expected)
          << "seed " << GetParam() << " step " << step;
      readers.erase(readers.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // Every live reader still sees exactly its snapshot's document —
    // commits, aborts and reclamation never disturb a pinned version.
    if (step % 7 == 6) {
      for (const PinnedReader& reader : readers) {
        ASSERT_EQ(f.Export(*reader.snap), reader.expected)
            << "seed " << GetParam() << " step " << step;
      }
    }
  }

  for (const PinnedReader& reader : readers) {
    EXPECT_EQ(f.Export(*reader.snap), reader.expected);
  }
  readers.clear();

  // All readers drained: every retired version must now be reclaimed
  // (no buffer pins are held here), and the chain head is intact.
  EXPECT_EQ(f.mgr->retired_pending(), 0u);
  EXPECT_EQ(f.mgr->versions_reclaimed(), f.mgr->versions_retired());
  EXPECT_EQ(f.mgr->commits(), static_cast<std::uint64_t>(commits));
  EXPECT_EQ(f.ExportCurrent(), f.ExportCurrent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnStress,
                         ::testing::Values(1u, 42u, 1234u, 98765u));

}  // namespace
}  // namespace navpath
