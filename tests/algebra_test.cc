// Focused tests for algebra internals: path instances, XSchedule queue
// behaviour, XScan scanning discipline, XAssembly structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "compiler/executor.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

TEST(PathInstanceTest, KeyDistinguishesStepAndNode) {
  const PathEnd a{1, NodeID{3, 4}, 0, true};
  const PathEnd b{2, NodeID{3, 4}, 0, true};
  const PathEnd c{1, NodeID{3, 5}, 0, true};
  const PathEnd d{1, NodeID{4, 4}, 0, true};
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
  EXPECT_NE(a.Key(), d.Key());
  EXPECT_EQ(a.Key(), (PathEnd{1, NodeID{3, 4}, 99, true}.Key()));
}

TEST(PathInstanceTest, ClassificationPredicates) {
  const PathInstance ctx = PathInstance::Context(NodeID{1, 1}, 0);
  EXPECT_TRUE(ctx.complete());
  EXPECT_TRUE(ctx.full(0));
  EXPECT_FALSE(ctx.full(1));

  const PathInstance seed = PathInstance::Seed(NodeID{2, 2}, 1);
  EXPECT_FALSE(seed.left_complete());
  EXPECT_FALSE(seed.right_complete());
  EXPECT_EQ(seed.left.step, 1);
  EXPECT_EQ(seed.right.step, 1);

  EXPECT_FALSE(ctx.ToString().empty());
  EXPECT_NE(ctx.ToString(), seed.ToString());
}

struct AlgebraFixture {
  Database db;
  DomTree tree;
  ImportedDocument doc;

  static DatabaseOptions Options() {
    DatabaseOptions options;
    options.page_size = 512;
    options.buffer_pages = 64;
    return options;
  }

  explicit AlgebraFixture(std::uint64_t seed, std::size_t nodes = 600)
      : db(Options()), tree(db.tags()) {
    RandomTreeOptions tree_options;
    tree_options.node_count = nodes;
    tree_options.tag_alphabet = 3;
    tree = MakeRandomTree(tree_options, seed, db.tags());
    RandomClusteringPolicy policy(448, seed + 1);
    doc = *db.Import(tree, &policy);
  }

  Result<QueryRunResult> Run(const std::string& path_text,
                             const PlanOptions& plan) {
    auto path = ParsePath(path_text, db.tags());
    NAVPATH_RETURN_NOT_OK(path.status());
    ExecuteOptions exec;
    exec.plan = plan;
    return ExecutePath(&db, doc, *path, exec);
  }
};

TEST(XScheduleTest, PoolsAllIoInOneOperator) {
  AlgebraFixture f(701);
  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  auto result = f.Run("//t1/t2", plan);
  ASSERT_TRUE(result.ok());
  // Every physical read was an asynchronous request from XSchedule, plus
  // possibly re-reads of evicted pages at Fix time.
  EXPECT_GT(result->metrics.async_requests, 0u);
  EXPECT_EQ(result->metrics.inter_cluster_hops, 0u);
  // Each visited cluster was entered through a swizzle.
  EXPECT_GE(result->metrics.swizzle_ops, result->metrics.clusters_visited);
}

TEST(XScheduleTest, NonSpeculativeRevisitsClusters) {
  AlgebraFixture f(702);
  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  plan.speculative = false;
  auto off = f.Run("//t1/ancestor::t0/t1", plan);
  ASSERT_TRUE(off.ok());
  plan.speculative = true;
  auto on = f.Run("//t1/ancestor::t0/t1", plan);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->count, off->count);
  // Speculation's purpose: no cluster is visited twice (Sec. 5.4.4).
  EXPECT_LT(on->metrics.clusters_visited, off->metrics.clusters_visited);
  EXPECT_GT(on->metrics.speculative_instances, 0u);
}

TEST(XScanTest, ReadsEveryPageExactlyOnceSequentially) {
  AlgebraFixture f(703);
  PlanOptions plan;
  plan.kind = PlanKind::kXScan;
  auto result = f.Run("//t0", plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.disk_reads, f.doc.page_count());
  EXPECT_EQ(result->metrics.disk_seq_reads, f.doc.page_count() - 1);
  EXPECT_EQ(result->metrics.clusters_visited, f.doc.page_count());
  EXPECT_EQ(result->metrics.async_requests, 0u);
}

TEST(XScanTest, SeedCountMatchesBordersTimesSteps) {
  AlgebraFixture f(704);
  PlanOptions plan;
  plan.kind = PlanKind::kXScan;
  auto result = f.Run("//t0/t1", plan);  // two steps
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.speculative_instances,
            2 * 2 * f.doc.border_pairs);  // both borders of a pair, 2 steps
}

TEST(XAssemblyTest, FinalResultsAreDeduplicated) {
  // //t0//t1 over nested t0s: XAssembly's R must deduplicate without the
  // executor's help.
  Database db(AlgebraFixture::Options());
  auto tree = ParseXml("<t0><t0><t1/></t0><t1/></t0>", db.tags());
  ASSERT_TRUE(tree.ok());
  RoundRobinClusteringPolicy policy(448);
  auto doc = db.Import(*tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto path = ParsePath("//t0//t1", db.tags());
  ASSERT_TRUE(path.ok());
  PlanOptions options;
  options.kind = PlanKind::kXScan;
  auto plan = BuildPlan(&db, *doc, *path, {}, options);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->root()->Open().ok());
  std::vector<std::uint64_t> emitted;
  PathInstance inst;
  for (;;) {
    auto more = plan->root()->Next(&inst);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    emitted.push_back(inst.right.node.Pack());
  }
  ASSERT_TRUE(plan->root()->Close().ok());
  std::sort(emitted.begin(), emitted.end());
  EXPECT_EQ(std::adjacent_find(emitted.begin(), emitted.end()),
            emitted.end());
  EXPECT_EQ(emitted.size(), 2u);
}

TEST(FallbackTest, XScheduleSpeculativeFallbackStillCorrect) {
  AlgebraFixture f(705, 800);
  auto path = ParsePath("//t0//t1", f.db.tags());
  ASSERT_TRUE(path.ok());
  const auto expected = OracleEvaluate(f.tree, *path, f.tree.root());

  PlanOptions plan;
  plan.kind = PlanKind::kXSchedule;
  plan.speculative = true;
  plan.s_budget = 2;
  auto result = f.Run("//t0//t1", plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, expected.size());
  EXPECT_GE(result->metrics.fallback_activations, 1u);
}

TEST(FallbackTest, NoFallbackWithoutBudget) {
  AlgebraFixture f(706);
  PlanOptions plan;
  plan.kind = PlanKind::kXScan;
  plan.s_budget = 0;  // unlimited
  auto result = f.Run("//t0//t1", plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.fallback_activations, 0u);
}

TEST(PlanBuilderTest, RejectsRelativePathWithoutContexts) {
  AlgebraFixture f(707, 100);
  auto path = ParsePath("t0", f.db.tags());
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(BuildPlan(&f.db, f.doc, *path, {}, {}).ok());
}

TEST(PlanBuilderTest, ZeroStepPathYieldsContext) {
  AlgebraFixture f(708, 100);
  auto path = ParsePath("/", f.db.tags());
  ASSERT_TRUE(path.ok());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    PlanOptions options;
    options.kind = kind;
    ExecuteOptions exec;
    exec.plan = options;
    exec.collect_nodes = true;
    auto result = ExecutePath(&f.db, f.doc, *path, exec);
    ASSERT_TRUE(result.ok()) << PlanKindName(kind);
    ASSERT_EQ(result->count, 1u) << PlanKindName(kind);
    EXPECT_EQ(result->nodes[0].order, 0u);
  }
}

}  // namespace
}  // namespace navpath
