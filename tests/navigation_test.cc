// Property tests for the navigational primitives: for random documents,
// random clusterings, every axis and every context node, cross-cluster
// navigation over the paged store must produce exactly the nodes the DOM
// oracle produces, in the same order.
#include <gtest/gtest.h>

#include <memory>

#include "tests/test_util.h"
#include "xpath/oracle.h"

namespace navpath {
namespace {

struct NavCase {
  std::string policy;
  std::uint64_t seed;
  std::size_t nodes;
};

class AxisNavigation : public ::testing::TestWithParam<NavCase> {};

TEST_P(AxisNavigation, MatchesOracleOnEveryNodeAndAxis) {
  const NavCase& param = GetParam();
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 128;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = param.nodes;
  tree_options.max_fanout = 6;
  const DomTree tree = MakeRandomTree(tree_options, param.seed, db.tags());

  std::unique_ptr<ClusteringPolicy> policy;
  if (param.policy == "subtree") {
    policy = std::make_unique<SubtreeClusteringPolicy>(448);
  } else if (param.policy == "random") {
    policy = std::make_unique<RandomClusteringPolicy>(448, param.seed + 1);
  } else {
    policy = std::make_unique<RoundRobinClusteringPolicy>(448);
  }
  auto doc = db.Import(tree, policy.get());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  auto mapping = MapOrderToNodeID(&db, *doc, tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();

  constexpr Axis kAxes[] = {
      Axis::kSelf,          Axis::kChild,
      Axis::kParent,        Axis::kDescendant,
      Axis::kDescendantOrSelf, Axis::kAncestor,
      Axis::kAncestorOrSelf,   Axis::kFollowingSibling,
      Axis::kPrecedingSibling,  Axis::kAttribute,
  };

  CrossClusterCursor cursor(&db);
  for (DomNodeId ctx = 0; ctx < tree.size(); ++ctx) {
    for (const Axis axis : kAxes) {
      LocationStep step{axis, NodeTest::AnyNode(), {}};
      const std::vector<DomNodeId> expected = OracleStep(tree, ctx, step);

      const NodeID origin = mapping->at(tree.node(ctx).order);
      ASSERT_TRUE(cursor.Start(axis, origin).ok());
      std::vector<std::uint64_t> got_orders;
      LogicalNode node;
      for (;;) {
        auto more = cursor.Next(&node);
        ASSERT_TRUE(more.ok()) << more.status().ToString();
        if (!*more) break;
        got_orders.push_back(node.order);
      }

      std::vector<std::uint64_t> expected_orders;
      expected_orders.reserve(expected.size());
      for (const DomNodeId n : expected) {
        expected_orders.push_back(tree.node(n).order);
      }
      // Chain/DFS enumeration order must match the oracle's axis order
      // for forward axes; reverse axes enumerate outward (reverse
      // document order), which the oracle also produces.
      ASSERT_EQ(got_orders, expected_orders)
          << "axis " << AxisName(axis) << " at node order "
          << tree.node(ctx).order << " (policy " << param.policy << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, AxisNavigation,
    ::testing::Values(NavCase{"subtree", 11, 300},
                      NavCase{"subtree", 12, 700},
                      NavCase{"random", 13, 300},
                      NavCase{"random", 14, 700},
                      NavCase{"round-robin", 15, 300},
                      NavCase{"round-robin", 16, 500},
                      NavCase{"random", 17, 60},
                      NavCase{"subtree", 18, 1200}),
    [](const ::testing::TestParamInfo<NavCase>& info) {
      std::string name = info.param.policy + "_" +
                         std::to_string(info.param.nodes) + "_s" +
                         std::to_string(info.param.seed);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(NavigationTest, NameTestsFilterByTag) {
  DatabaseOptions options;
  options.page_size = 512;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = 200;
  tree_options.tag_alphabet = 3;
  const DomTree tree = MakeRandomTree(tree_options, 21, db.tags());
  RandomClusteringPolicy policy(448, 5);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto mapping = MapOrderToNodeID(&db, *doc, tree);
  ASSERT_TRUE(mapping.ok());

  const TagId t1 = *db.tags()->Lookup("t1");
  LocationStep step{Axis::kDescendant, NodeTest::Name("t1", t1), {}};
  const auto expected = OracleStep(tree, tree.root(), step);

  CrossClusterCursor cursor(&db);
  ASSERT_TRUE(cursor.Start(Axis::kDescendant, doc->root).ok());
  std::size_t matches = 0;
  LogicalNode node;
  for (;;) {
    auto more = cursor.Next(&node);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    if (node.tag == t1) ++matches;
  }
  EXPECT_EQ(matches, expected.size());
}

}  // namespace
}  // namespace navpath
