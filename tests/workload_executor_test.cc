// Tests for the multi-query workload executor: interleaved execution must
// be invisible in the results (byte-identical to back-to-back runs for
// every plan kind and policy), cross-query request merging must never
// serve stale data, admission control must respect the buffer budget, and
// the whole machinery must survive injected transient faults.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "benchlib/harness.h"
#include "compiler/workload_executor.h"
#include "storage/disk.h"
#include "storage/fault_injector.h"
#include "storage/page.h"
#include "xmark/generator.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

const char* const kQueries[] = {
    "/site/regions//item",
    "/site/people/person/email",
    "/site//keyword",
};

std::vector<std::uint64_t> OrdersOf(const std::vector<LogicalNode>& nodes) {
  std::vector<std::uint64_t> orders;
  orders.reserve(nodes.size());
  for (const LogicalNode& node : nodes) orders.push_back(node.order);
  return orders;
}

/// Runs `queries` through a WorkloadExecutor and returns the result.
Result<WorkloadResult> RunWorkload(XMarkFixture* fixture,
                                   const std::vector<std::string>& queries,
                                   PlanKind kind, WorkloadPolicy policy,
                                   std::size_t max_concurrent) {
  WorkloadOptions options;
  options.policy = policy;
  options.max_concurrent = max_concurrent;
  options.collect_nodes = true;
  options.stats = &fixture->stats();
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  for (const std::string& q : queries) {
    NAVPATH_RETURN_NOT_OK(executor.Add(q, PaperPlan(kind)));
  }
  return executor.Run();
}

TEST(WorkloadExecutorTest, InterleavedMatchesSequentialForAllPlanKinds) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const std::vector<std::string> queries(std::begin(kQueries),
                                         std::end(kQueries));
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXScan, PlanKind::kXSchedule}) {
    // Ground truth: each query standalone through the ordinary executor.
    std::vector<QueryRunResult> solo;
    for (const std::string& q : queries) {
      auto result = (*fixture)->Run(q, PaperPlan(kind));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_GT(result->count, 0u);
      solo.push_back(*std::move(result));
    }

    auto interleaved = RunWorkload(fixture->get(), queries, kind,
                                   WorkloadPolicy::kRoundRobin, 0);
    ASSERT_TRUE(interleaved.ok())
        << PlanKindName(kind) << ": " << interleaved.status().ToString();
    ASSERT_EQ(interleaved->queries.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(interleaved->queries[i].count, solo[i].count)
          << PlanKindName(kind) << " " << queries[i];
      EXPECT_EQ(OrdersOf(interleaved->queries[i].nodes),
                OrdersOf(solo[i].nodes))
          << PlanKindName(kind) << " " << queries[i];
    }
  }
}

TEST(WorkloadExecutorTest, AllPoliciesProduceIdenticalResults) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const std::vector<std::string> queries(std::begin(kQueries),
                                         std::end(kQueries));

  auto baseline = RunWorkload(fixture->get(), queries, PlanKind::kXSchedule,
                              WorkloadPolicy::kRoundRobin, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (const WorkloadPolicy policy :
       {WorkloadPolicy::kRoundRobin, WorkloadPolicy::kFewestPendingIos,
        WorkloadPolicy::kShortestRemainingCost, WorkloadPolicy::kHybrid}) {
    auto run = RunWorkload(fixture->get(), queries, PlanKind::kXSchedule,
                           policy, 0);
    ASSERT_TRUE(run.ok())
        << WorkloadPolicyName(policy) << ": " << run.status().ToString();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(run->queries[i].count, baseline->queries[i].count)
          << WorkloadPolicyName(policy) << " " << queries[i];
      EXPECT_EQ(OrdersOf(run->queries[i].nodes),
                OrdersOf(baseline->queries[i].nodes))
          << WorkloadPolicyName(policy) << " " << queries[i];
    }
  }
}

/// Runs `queries` under `policy` and records the pull schedule (job index
/// per scheduling decision) via the on_pull hook.
Result<std::vector<std::size_t>> PullScheduleOf(
    XMarkFixture* fixture, const std::vector<std::string>& queries,
    WorkloadPolicy policy,
    std::vector<std::size_t>* active_sizes = nullptr) {
  std::vector<std::size_t> schedule;
  WorkloadOptions options;
  options.policy = policy;
  options.collect_nodes = false;
  options.stats = &fixture->stats();
  options.on_pull = [&](std::size_t job_index, std::size_t active_size) {
    schedule.push_back(job_index);
    if (active_sizes != nullptr) active_sizes->push_back(active_size);
  };
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  for (const std::string& q : queries) {
    NAVPATH_RETURN_NOT_OK(executor.Add(q, PaperPlan(PlanKind::kXSchedule)));
  }
  NAVPATH_RETURN_NOT_OK(executor.Run().status());
  return schedule;
}

TEST(WorkloadExecutorTest, PullScheduleIsDeterministicForEveryPolicy) {
  // Scheduling must depend only on the workload, never on host state:
  // two identically-seeded fixtures have to produce pull-for-pull
  // identical schedules under every policy, hybrid's live classification
  // signals included.
  const std::vector<std::string> queries(std::begin(kQueries),
                                         std::end(kQueries));
  for (const WorkloadPolicy policy :
       {WorkloadPolicy::kRoundRobin, WorkloadPolicy::kFewestPendingIos,
        WorkloadPolicy::kShortestRemainingCost, WorkloadPolicy::kHybrid}) {
    auto first_fixture = XMarkFixture::Create(0.02);
    ASSERT_TRUE(first_fixture.ok()) << first_fixture.status().ToString();
    auto second_fixture = XMarkFixture::Create(0.02);
    ASSERT_TRUE(second_fixture.ok()) << second_fixture.status().ToString();

    auto first = PullScheduleOf(first_fixture->get(), queries, policy);
    ASSERT_TRUE(first.ok())
        << WorkloadPolicyName(policy) << ": " << first.status().ToString();
    auto second = PullScheduleOf(second_fixture->get(), queries, policy);
    ASSERT_TRUE(second.ok())
        << WorkloadPolicyName(policy) << ": " << second.status().ToString();

    ASSERT_FALSE(first->empty()) << WorkloadPolicyName(policy);
    EXPECT_EQ(*first, *second) << WorkloadPolicyName(policy);
  }
}

TEST(WorkloadExecutorTest, RoundRobinNeverStarvesAJob) {
  // Regression for the `decisions % active.size()` cursor: when a job
  // completed, the modulus re-aligned and could pull some survivor twice
  // while another waited. Rotation over stable job ids guarantees that
  // between two pulls of any job, no other job is pulled twice, and the
  // gap never exceeds one full rotation of the admitted set.
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const std::vector<std::string> queries = {
      "/site/regions//item",        "/site/people/person/email",
      "/site//keyword",             "/site/regions//name",
      "/site/people/person/name"};

  std::vector<std::size_t> active_sizes;
  auto schedule = PullScheduleOf(fixture->get(), queries,
                                 WorkloadPolicy::kRoundRobin, &active_sizes);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  ASSERT_FALSE(schedule->empty());

  std::vector<std::size_t> last_pull(queries.size(), 0);
  std::vector<bool> pulled(queries.size(), false);
  for (std::size_t t = 0; t < schedule->size(); ++t) {
    const std::size_t job = (*schedule)[t];
    ASSERT_LT(job, queries.size());
    if (pulled[job]) {
      // Every pull in between must belong to a distinct other job.
      std::vector<int> seen(queries.size(), 0);
      for (std::size_t u = last_pull[job] + 1; u < t; ++u) {
        ++seen[(*schedule)[u]];
        EXPECT_LE(seen[(*schedule)[u]], 1)
            << "job " << (*schedule)[u] << " pulled twice while job " << job
            << " waited (decisions " << last_pull[job] << ".." << t << ")";
      }
      EXPECT_LE(t - last_pull[job], queries.size())
          << "job " << job << " waited longer than one full rotation";
    }
    pulled[job] = true;
    last_pull[job] = t;
  }
}

TEST(WorkloadExecutorTest, CrossQueryMergingIsCountedAndNeverStale) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  // Two queries over the same document region: their XSchedule prefetch
  // sets overlap heavily, so duplicate reads must be merged at the disk.
  const std::vector<std::string> overlapping = {"/site/regions//item",
                                                "/site/regions//name"};

  auto sequential = RunWorkload(fixture->get(), overlapping,
                                PlanKind::kXSchedule,
                                WorkloadPolicy::kRoundRobin, 1);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  EXPECT_EQ(sequential->metrics.requests_merged, 0u)
      << "back-to-back queries never overlap in flight";

  auto interleaved = RunWorkload(fixture->get(), overlapping,
                                 PlanKind::kXSchedule,
                                 WorkloadPolicy::kRoundRobin, 0);
  ASSERT_TRUE(interleaved.ok()) << interleaved.status().ToString();
  EXPECT_GT(interleaved->metrics.requests_merged, 0u);
  // A merged completion serves every interested query with the same
  // installed page; results must stay exact.
  for (std::size_t i = 0; i < overlapping.size(); ++i) {
    EXPECT_EQ(interleaved->queries[i].count, sequential->queries[i].count);
    EXPECT_EQ(OrdersOf(interleaved->queries[i].nodes),
              OrdersOf(sequential->queries[i].nodes));
  }
}

TEST(WorkloadExecutorTest, AdmissionControlRespectsBufferBudget) {
  const std::vector<std::string> queries = {"/site/regions//item",
                                            "/site/regions//name"};
  // XSchedule's admission footprint is queue_k + 2 = 102 pages. A 64-page
  // buffer cannot hold two such queries, so the second is admitted only
  // after the first finishes.
  FixtureOptions tight;
  tight.db.buffer_pages = 64;
  auto small = XMarkFixture::Create(0.005, tight);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  auto serialized = RunWorkload(small->get(), queries, PlanKind::kXSchedule,
                                WorkloadPolicy::kRoundRobin, 0);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  EXPECT_EQ(serialized->queries[0].admitted_at, 0u);
  EXPECT_GE(serialized->queries[1].admitted_at,
            serialized->queries[0].finished_at);

  // With the default 1000-page buffer both fit the budget immediately.
  auto roomy = XMarkFixture::Create(0.005);
  ASSERT_TRUE(roomy.ok()) << roomy.status().ToString();
  auto concurrent = RunWorkload(roomy->get(), queries, PlanKind::kXSchedule,
                                WorkloadPolicy::kRoundRobin, 0);
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  EXPECT_EQ(concurrent->queries[0].admitted_at, 0u);
  EXPECT_EQ(concurrent->queries[1].admitted_at, 0u);

  // Admission changes scheduling, never answers.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(serialized->queries[i].count, concurrent->queries[i].count);
  }
}

TEST(WorkloadExecutorTest, SurvivesTransientFaults) {
  FaultInjectorOptions faults;
  faults.seed = 1234;
  faults.transient_read_error_rate = 0.10;
  faults.corruption_rate = 0.02;
  faults.latency_spike_rate = 0.02;

  FixtureOptions clean_options;
  clean_options.db.page_size = 1024;
  clean_options.db.buffer_pages = 256;
  auto clean = XMarkFixture::Create(0.005, clean_options);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  FixtureOptions faulty_options = clean_options;
  faulty_options.db.faults = faults;
  // Injection rates far above any real device; give the retry loop room.
  faulty_options.db.retry.max_attempts = 8;
  auto faulty = XMarkFixture::Create(0.005, faulty_options);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  const std::vector<std::string> queries(std::begin(kQueries),
                                         std::end(kQueries));
  auto expected = RunWorkload(clean->get(), queries, PlanKind::kXSchedule,
                              WorkloadPolicy::kRoundRobin, 0);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  EXPECT_EQ(expected->metrics.faults_injected, 0u);

  auto survived = RunWorkload(faulty->get(), queries, PlanKind::kXSchedule,
                              WorkloadPolicy::kRoundRobin, 0);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_GT(survived->metrics.faults_injected, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(survived->queries[i].count, expected->queries[i].count)
        << queries[i];
    EXPECT_EQ(OrdersOf(survived->queries[i].nodes),
              OrdersOf(expected->queries[i].nodes))
        << queries[i];
  }
  // Recovery costs simulated time; the faulty run cannot be faster.
  EXPECT_GE(survived->total_time, expected->total_time);
}

TEST(WorkloadExecutorTest, ExplicitInflightCapStillProducesExactResults) {
  auto fixture = XMarkFixture::Create(0.02);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const std::vector<std::string> queries(std::begin(kQueries),
                                         std::end(kQueries));

  auto unbounded = RunWorkload(fixture->get(), queries, PlanKind::kXSchedule,
                               WorkloadPolicy::kRoundRobin, 0);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();

  WorkloadOptions options;
  options.collect_nodes = true;
  options.prefetch_inflight_cap = 8;
  WorkloadExecutor executor(fixture->get()->db(), fixture->get()->doc(),
                            options);
  for (const std::string& q : queries) {
    ASSERT_TRUE(executor.Add(q, PaperPlan(PlanKind::kXSchedule)).ok());
  }
  auto capped = executor.Run();
  ASSERT_TRUE(capped.ok()) << capped.status().ToString();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(capped->queries[i].count, unbounded->queries[i].count);
    EXPECT_EQ(OrdersOf(capped->queries[i].nodes),
              OrdersOf(unbounded->queries[i].nodes));
  }
}

TEST(WorkloadExecutorTest, OneQuerysCorruptionDoesNotFailItsNeighbors) {
  // Per-query fault isolation: poison a page only one query reads and run
  // the three-query workload. The victim's own result carries the
  // Corruption status; its neighbors finish with exact answers and Run()
  // itself succeeds.
  const std::string victim = "/site/people/person/email";
  const std::vector<std::string> neighbors = {"/site/regions//item",
                                              "/site/regions//name"};

  auto clean = XMarkFixture::Create(0.005);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  auto trace_of = [&](const std::string& query) {
    std::vector<PageId> trace;
    (*clean)->db()->disk()->SetTrace(&trace);
    auto run = (*clean)->Run(query, PaperPlan(PlanKind::kXSchedule));
    (*clean)->db()->disk()->SetTrace(nullptr);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return trace;
  };
  std::unordered_set<PageId> neighbor_pages;
  for (const std::string& q : neighbors) {
    for (const PageId page : trace_of(q)) neighbor_pages.insert(page);
  }
  PageId bad_page = kInvalidPageId;
  for (const PageId page : trace_of(victim)) {
    if (neighbor_pages.count(page) == 0) {
      bad_page = page;
      break;
    }
  }
  ASSERT_NE(bad_page, kInvalidPageId);

  std::vector<std::string> queries = {victim};
  queries.insert(queries.end(), neighbors.begin(), neighbors.end());
  auto expected = RunWorkload(clean->get(), queries, PlanKind::kXSchedule,
                              WorkloadPolicy::kHybrid, 0);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  FixtureOptions faulty_options;
  faulty_options.db.faults.seed = 7;
  faulty_options.db.faults.permanent_bad_pages = {bad_page};
  auto faulty = XMarkFixture::Create(0.005, faulty_options);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  auto survived = RunWorkload(faulty->get(), queries, PlanKind::kXSchedule,
                              WorkloadPolicy::kHybrid, 0);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_TRUE(survived->queries[0].status.IsCorruption())
      << survived->queries[0].status.ToString();
  for (std::size_t i = 1; i < queries.size(); ++i) {
    EXPECT_TRUE(survived->queries[i].status.ok())
        << survived->queries[i].status.ToString();
    EXPECT_EQ(survived->queries[i].count, expected->queries[i].count)
        << queries[i];
    EXPECT_EQ(OrdersOf(survived->queries[i].nodes),
              OrdersOf(expected->queries[i].nodes))
        << queries[i];
  }
}

TEST(WorkloadExecutorTest, RejectsMalformedOptionsAndDeadlines) {
  auto fixture = XMarkFixture::Create(0.005);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

  // Options are validated at the top of Run(), not asserted mid-flight.
  WorkloadOptions bad_budget;
  bad_budget.buffer_budget_fraction = 1.5;
  WorkloadExecutor over((*fixture)->db(), (*fixture)->doc(), bad_budget);
  ASSERT_TRUE(over.Add(kQueries[0], PaperPlan(PlanKind::kSimple)).ok());
  EXPECT_TRUE(over.Run().status().IsInvalidArgument());

  WorkloadOptions negative;
  negative.buffer_budget_fraction = -0.25;
  WorkloadExecutor under((*fixture)->db(), (*fixture)->doc(), negative);
  ASSERT_TRUE(under.Add(kQueries[0], PaperPlan(PlanKind::kSimple)).ok());
  EXPECT_TRUE(under.Run().status().IsInvalidArgument());

  // A deadline at or before the arrival can never be met and is rejected
  // at Add() time.
  WorkloadExecutor executor((*fixture)->db(), (*fixture)->doc());
  EXPECT_TRUE(executor
                  .Add(kQueries[0], PaperPlan(PlanKind::kSimple),
                       /*arrival=*/kSimSecond, /*deadline=*/kSimSecond)
                  .IsInvalidArgument());
  EXPECT_TRUE(executor
                  .Add(kQueries[0], PaperPlan(PlanKind::kSimple),
                       /*arrival=*/2 * kSimSecond,
                       /*deadline=*/kSimSecond)
                  .IsInvalidArgument());
  ASSERT_TRUE(executor
                  .Add(kQueries[0], PaperPlan(PlanKind::kSimple),
                       /*arrival=*/kSimSecond,
                       /*deadline=*/2 * kSimSecond)
                  .ok());
  auto run = executor.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->queries[0].status.ok());
}

TEST(WorkloadExecutorTest, RejectsInvalidWorkloads) {
  auto fixture = XMarkFixture::Create(0.005);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  WorkloadExecutor executor((*fixture)->db(), (*fixture)->doc());
  EXPECT_TRUE(executor.Run().status().IsInvalidArgument());  // empty
  EXPECT_TRUE(executor
                  .Add("/site/regions/europe/item[quantity]",
                       PaperPlan(PlanKind::kXSchedule))
                  .IsInvalidArgument());  // predicates unsupported
}

}  // namespace
}  // namespace navpath
