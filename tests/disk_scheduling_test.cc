// Tests for the asynchronous scheduler details: C-SCAN elevator order,
// bounded queue window, trace hook, timeline reset discipline, duplicate
// request merging, and elevator pool depth accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "compiler/workload_executor.h"
#include "storage/disk.h"

namespace navpath {
namespace {

constexpr std::size_t kPage = 512;

struct Fixture {
  SimClock clock;
  Metrics metrics;
  SimulatedDisk disk;

  explicit Fixture(DiskModel model = DiskModel())
      : disk(model, kPage, &clock, &metrics) {
    std::vector<std::byte> buf(kPage);
    for (int i = 0; i < 200; ++i) {
      const PageId id = disk.AllocatePage();
      disk.WriteSync(id, buf.data()).AbortIfNotOk();
    }
    clock.Reset();
    disk.ResetTimeline();
  }

  std::vector<PageId> DrainAll() {
    std::vector<std::byte> buf(kPage);
    std::vector<PageId> order;
    while (disk.pending_requests() > 0) {
      auto page = disk.WaitForCompletion(buf.data());
      page.status().AbortIfNotOk();
      order.push_back(page->page);
    }
    return order;
  }
};

TEST(DiskSchedulingTest, ElevatorServesAscendingSweep) {
  Fixture f;
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(50, buf.data()).ok());  // head at 50
  for (const PageId p : {80, 60, 70, 55, 90}) {
    ASSERT_TRUE(f.disk.SubmitRead(p).ok());
  }
  EXPECT_EQ(f.DrainAll(), (std::vector<PageId>{55, 60, 70, 80, 90}));
}

TEST(DiskSchedulingTest, ElevatorWrapsBelowHead) {
  Fixture f;
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(100, buf.data()).ok());
  for (const PageId p : {10, 120, 5, 110}) {
    ASSERT_TRUE(f.disk.SubmitRead(p).ok());
  }
  // Ascending from the head first, then wrap to the lowest.
  EXPECT_EQ(f.DrainAll(), (std::vector<PageId>{110, 120, 5, 10}));
}

TEST(DiskSchedulingTest, QueueWindowBoundsReordering) {
  DiskModel narrow;
  narrow.queue_window = 1;  // no reordering freedom at all
  Fixture f(narrow);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(50, buf.data()).ok());
  for (const PageId p : {80, 60, 70}) {
    ASSERT_TRUE(f.disk.SubmitRead(p).ok());
  }
  // Window 1 == FIFO: submission order.
  EXPECT_EQ(f.DrainAll(), (std::vector<PageId>{80, 60, 70}));
}

TEST(DiskSchedulingTest, WiderWindowReducesSeekDistance) {
  DiskModel narrow;
  narrow.queue_window = 1;
  DiskModel wide;
  wide.queue_window = 64;
  const std::vector<PageId> targets = {90, 10, 80, 20, 70, 30, 60, 40};

  Fixture f_narrow(narrow);
  for (const PageId p : targets) {
    ASSERT_TRUE(f_narrow.disk.SubmitRead(p).ok());
  }
  f_narrow.DrainAll();

  Fixture f_wide(wide);
  for (const PageId p : targets) {
    ASSERT_TRUE(f_wide.disk.SubmitRead(p).ok());
  }
  f_wide.DrainAll();

  EXPECT_LT(f_wide.metrics.disk_seek_pages,
            f_narrow.metrics.disk_seek_pages);
  EXPECT_LT(f_wide.clock.now(), f_narrow.clock.now());
}

TEST(DiskSchedulingTest, LateSubmissionsDoNotTimeTravel) {
  Fixture f;
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.SubmitRead(100).ok());
  // The drive starts serving page 100 immediately; a request submitted
  // much later cannot be serviced before it even though it is nearer.
  auto first = f.disk.WaitForCompletion(buf.data());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->page, 100u);
  ASSERT_TRUE(f.disk.SubmitRead(99).ok());
  auto second = f.disk.WaitForCompletion(buf.data());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->page, 99u);
}

TEST(DiskSchedulingTest, TraceRecordsServiceOrder) {
  Fixture f;
  std::vector<PageId> trace;
  f.disk.SetTrace(&trace);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(3, buf.data()).ok());
  ASSERT_TRUE(f.disk.SubmitRead(7).ok());
  ASSERT_TRUE(f.disk.SubmitRead(5).ok());
  f.DrainAll();
  f.disk.SetTrace(nullptr);
  EXPECT_EQ(trace, (std::vector<PageId>{3, 5, 7}));
  // After detaching, accesses are no longer recorded.
  ASSERT_TRUE(f.disk.ReadSync(9, buf.data()).ok());
  EXPECT_EQ(trace.size(), 3u);
}

TEST(DiskSchedulingTest, DuplicateSubmissionsMergeIntoOneRequest) {
  Fixture f;
  ASSERT_TRUE(f.disk.SubmitRead(42).ok());
  ASSERT_TRUE(f.disk.SubmitRead(42).ok());  // merged, not queued twice
  ASSERT_TRUE(f.disk.SubmitRead(17).ok());
  EXPECT_EQ(f.disk.pending_requests(), 2u);
  EXPECT_EQ(f.metrics.requests_merged, 1u);
  // One disk service produces one completion for the merged pair.
  const std::vector<PageId> served = f.DrainAll();
  EXPECT_EQ(served.size(), 2u);
  EXPECT_EQ(f.metrics.disk_reads, 2u);
}

TEST(DiskSchedulingTest, ElevatorDepthIsSampledPerServiceDecision) {
  Fixture f;
  for (const PageId p : {80, 60, 70, 55, 90}) {
    ASSERT_TRUE(f.disk.SubmitRead(p).ok());
  }
  f.DrainAll();
  // One sample per service decision; the first decision saw all five
  // pending requests, later ones progressively fewer.
  EXPECT_EQ(f.metrics.elevator_batches, 5u);
  EXPECT_EQ(f.metrics.elevator_depth_max, 5u);
  EXPECT_EQ(f.metrics.elevator_depth_sum, 5u + 4u + 3u + 2u + 1u);
  EXPECT_DOUBLE_EQ(f.metrics.MeanElevatorDepth(), 3.0);
}

TEST(DiskSchedulingTest, SoloQueryPlansReportNoMerges) {
  // A single query never has two owners interested in one page, so the
  // merge counter must stay zero for every plan kind (the workload layer
  // relies on this to attribute merges to genuine cross-query overlap).
  auto fixture = XMarkFixture::Create(0.005);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXScan, PlanKind::kXSchedule}) {
    auto result = (*fixture)->Run("/site/regions//item", PaperPlan(kind));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->metrics.requests_merged, 0u) << PlanKindName(kind);
  }
}

TEST(DiskSchedulingTest, HighPriorityRequestJumpsTheSweep) {
  Fixture f;
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(50, buf.data()).ok());  // head at 50
  ASSERT_TRUE(f.disk.SubmitRead(60).ok());
  ASSERT_TRUE(f.disk.SubmitRead(70).ok());
  ASSERT_TRUE(f.disk.SubmitRead(90, ReadPriority::kHigh).ok());
  // The farthest request is served first because it is the only
  // high-priority one; the jump past nearer normal requests is counted.
  const std::vector<PageId> order = f.DrainAll();
  EXPECT_EQ(order.front(), 90u);
  EXPECT_EQ(f.metrics.priority_jumps, 1u);
}

TEST(DiskSchedulingTest, PriorityClassKeepsElevatorOrderWithinClass) {
  Fixture f;
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(50, buf.data()).ok());
  ASSERT_TRUE(f.disk.SubmitRead(55).ok());
  ASSERT_TRUE(f.disk.SubmitRead(70).ok());
  ASSERT_TRUE(f.disk.SubmitRead(80, ReadPriority::kHigh).ok());
  ASSERT_TRUE(f.disk.SubmitRead(60, ReadPriority::kHigh).ok());
  ASSERT_TRUE(f.disk.SubmitRead(90, ReadPriority::kHigh).ok());
  // The high-priority class drains first, C-SCAN order within the class;
  // the normal class follows, also in sweep order.
  EXPECT_EQ(f.DrainAll(), (std::vector<PageId>{60, 80, 90, 55, 70}));
}

TEST(DiskSchedulingTest, DuplicateSubmissionUpgradesPriority) {
  Fixture f;
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(50, buf.data()).ok());
  ASSERT_TRUE(f.disk.SubmitRead(90).ok());
  ASSERT_TRUE(f.disk.SubmitRead(60).ok());
  // A high-priority submission of an already-pending page merges AND
  // upgrades: page 90 now outranks the nearer normal request.
  ASSERT_TRUE(f.disk.SubmitRead(90, ReadPriority::kHigh).ok());
  EXPECT_EQ(f.metrics.requests_merged, 1u);
  EXPECT_EQ(f.DrainAll(), (std::vector<PageId>{90, 60}));
}

TEST(DiskSchedulingTest, PromoteReadRaisesPendingRequest) {
  Fixture f;
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(50, buf.data()).ok());
  ASSERT_TRUE(f.disk.SubmitRead(90).ok());
  ASSERT_TRUE(f.disk.SubmitRead(60).ok());
  f.disk.PromoteRead(90, ReadPriority::kHigh);
  f.disk.PromoteRead(777, ReadPriority::kHigh);  // not pending: no-op
  EXPECT_EQ(f.DrainAll(), (std::vector<PageId>{90, 60}));
  EXPECT_EQ(f.metrics.priority_jumps, 1u);
}

TEST(DiskSchedulingTest, WorkloadPriorityIoJumpsAndStaysExact) {
  // The workload executor tags the cheapest-remaining quartile's reads
  // as high priority. With four concurrent XSchedule queries the tagged
  // reads must actually jump the sweep (counted by disk.priority_jumps),
  // and prioritization may reorder service but never change results.
  // The command queue admits the earliest-submitted requests first, so a
  // shallow window drains one query's batch before the next one's
  // arrives; a deeper window (NCQ-class hardware) is where the service
  // classes actually mix.
  FixtureOptions deep_queue;
  deep_queue.db.disk_model.queue_window = 64;
  auto fixture = XMarkFixture::Create(0.02, deep_queue);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const std::vector<std::string> queries = {
      "/site/regions//item", "/site/people/person/email",
      "/site//keyword", "/site/regions//name"};

  auto run = [&](bool priority_io) -> Result<WorkloadResult> {
    WorkloadOptions options;
    // Round-robin keeps the short query interleaved with the scans (SJF
    // variants drain its I/O before the long queries pool), so its
    // high-priority reads actually coexist with normal ones at the drive.
    options.policy = WorkloadPolicy::kRoundRobin;
    options.collect_nodes = true;
    options.stats = &(*fixture)->stats();
    options.priority_io = priority_io;
    WorkloadExecutor executor((*fixture)->db(), (*fixture)->doc(), options);
    for (const std::string& q : queries) {
      NAVPATH_RETURN_NOT_OK(
          executor.Add(q, PaperPlan(PlanKind::kXSchedule)));
    }
    return executor.Run();
  };

  auto plain = run(false);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->metrics.priority_jumps, 0u);

  auto prioritized = run(true);
  ASSERT_TRUE(prioritized.ok()) << prioritized.status().ToString();
  EXPECT_GT(prioritized->metrics.priority_jumps, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(prioritized->queries[i].count, plain->queries[i].count)
        << queries[i];
  }
}

TEST(DiskSchedulingTest, SequentialForwardSkipRotatesInsteadOfSeeking) {
  DiskModel m;
  // Skipping 3 pages forward: rotate past (3-1 = 2 transfers) + transfer.
  EXPECT_EQ(m.AccessCost(10, 13), 3 * m.transfer_time);
  // Far forward: the seek is cheaper than rotating past thousands.
  EXPECT_LT(m.AccessCost(10, 5000),
            4990 * m.transfer_time);
  // Backward always seeks.
  EXPECT_GT(m.AccessCost(13, 10), m.seek_base);
}

}  // namespace
}  // namespace navpath
