// XMark tour: generates an XMark-shaped auction document, runs the
// paper's evaluation queries (Tab. 2) with every plan, and explains the
// outcome with execution metrics.
//
//   ./build/examples/xmark_tour [scale_factor]   (default 0.1)
#include <cstdio>
#include <cstdlib>

#include "benchlib/harness.h"

int main(int argc, char** argv) {
  using namespace navpath;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  std::printf("generating XMark document at scale factor %.2f ...\n", scale);
  auto fixture = XMarkFixture::Create(scale);
  fixture.status().AbortIfNotOk();
  const ImportedDocument& doc = (*fixture)->doc();
  std::printf("document: %u pages, %llu elements, %llu border pairs\n\n",
              doc.page_count(),
              static_cast<unsigned long long>(doc.core_records),
              static_cast<unsigned long long>(doc.border_pairs));

  const struct {
    const char* name;
    const char* text;
    const char* story;
  } queries[] = {
      {"Q6'", kQ6Prime, "medium selectivity: every item, nothing else"},
      {"Q7", kQ7, "low selectivity: most of the document is prose"},
      {"Q15", kQ15, "high selectivity: one deep path into parlists"},
  };

  for (const auto& query : queries) {
    std::printf("%s (%s)\n  %s\n", query.name, query.story, query.text);
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      auto result = (*fixture)->Run(query.text, PaperPlan(kind));
      result.status().AbortIfNotOk();
      std::printf(
          "  %-9s  result=%-6llu total=%7.2fs cpu=%5.2fs (%3.0f%%) "
          "reads=%-6llu seq=%-6llu seeks=%llu pages\n",
          PlanKindName(kind),
          static_cast<unsigned long long>(result->count),
          result->total_seconds(), result->cpu_seconds(),
          100.0 * result->cpu_fraction(),
          static_cast<unsigned long long>(result->metrics.disk_reads),
          static_cast<unsigned long long>(result->metrics.disk_seq_reads),
          static_cast<unsigned long long>(result->metrics.disk_seek_pages));
    }
    std::printf("\n");
  }
  std::printf(
      "reading the numbers: XSchedule turns the Simple plan's scattered\n"
      "synchronous reads into elevator-ordered asynchronous ones; XScan\n"
      "replaces them with one sequential sweep plus speculative CPU work,\n"
      "which pays off exactly when the query touches most of the document\n"
      "(Q7) and backfires when it touches little of it (Q15).\n");
  return 0;
}
