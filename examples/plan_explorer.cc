// Plan explorer: compile an arbitrary query against an XMark document and
// compare the three physical plans, including the partial-path-instance
// statistics XAssembly keeps (the paper's R and S structures).
//
//   ./build/examples/plan_explorer [query] [scale_factor]
//   ./build/examples/plan_explorer "//person/email" 0.05
//
// Observability (output unchanged unless requested):
//   NAVPATH_EXPLAIN=1      print an EXPLAIN ANALYZE report per plan
//   NAVPATH_TRACE_DIR=dir  write dir/plan_explorer_<plan>.trace.json
//                          (Chrome trace_event format, open in Perfetto)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchlib/harness.h"
#include "xpath/parser.h"

int main(int argc, char** argv) {
  using namespace navpath;
  const std::string query_text =
      argc > 1 ? argv[1] : "/site/open_auctions/open_auction/bidder/increase";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;

  auto fixture = XMarkFixture::Create(scale);
  fixture.status().AbortIfNotOk();
  Database* db = (*fixture)->db();

  auto query = ParseQuery(query_text, db->tags());
  if (!query.ok()) {
    std::fprintf(stderr, "cannot parse '%s': %s\n", query_text.c_str(),
                 query.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %s\n", query->ToString().c_str());
  for (std::size_t i = 0; i < query->paths.size(); ++i) {
    std::printf("path %zu normalized steps:\n", i + 1);
    int step = 1;
    for (const LocationStep& s : query->paths[i].steps) {
      std::printf("  XStep_%d: %s\n", step++, s.ToString().c_str());
    }
  }

  // What would the cost-based optimizer do?
  PlanCosts estimated;
  for (const LocationPath& path : query->paths) {
    const PlanCosts costs =
        EstimatePlanCosts((*fixture)->stats(), path,
                          db->options().disk_model, db->costs());
    estimated.simple += costs.simple;
    estimated.xschedule += costs.xschedule;
    estimated.xscan += costs.xscan;
  }
  std::printf(
      "\ncost model estimates: Simple %.3fs, XSchedule %.3fs, XScan %.3fs "
      "-> would pick %s\n",
      estimated.simple * 1e-9, estimated.xschedule * 1e-9,
      estimated.xscan * 1e-9, PlanKindName(estimated.Best()));

  const char* explain_env = std::getenv("NAVPATH_EXPLAIN");
  const bool explain_mode = explain_env != nullptr && explain_env[0] != '\0';

  std::printf("\nplan comparison at scale %.2f (%u pages):\n", scale,
              (*fixture)->doc().page_count());
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    const bool tracing = EnableTraceCapture(db);
    // Tracing implies profiling so the trace carries per-operator pull
    // spans; both only read the simulated clock, so costs are unchanged.
    auto result = explain_mode || tracing
                      ? (*fixture)->RunExplain(query_text, PaperPlan(kind))
                      : (*fixture)->Run(query_text, PaperPlan(kind));
    result.status().AbortIfNotOk();
    std::printf("\n[%s]\n", PlanKindName(kind));
    std::printf("  results: %llu, total %.3fs, cpu %.3fs (%.0f%%)\n",
                static_cast<unsigned long long>(result->count),
                result->total_seconds(), result->cpu_seconds(),
                100.0 * result->cpu_fraction());
    std::printf("  %s\n", result->metrics.ToString().c_str());
    if (explain_mode && result->explain != nullptr) {
      std::printf("\n%s", result->explain->ToString().c_str());
    }
    if (tracing) {
      WriteTraceCapture(db, std::string("plan_explorer_") +
                                PlanKindName(kind) + ".trace.json")
          .AbortIfNotOk();
    }
  }

  std::printf(
      "\nlegend: 'instances' counts partial path instances (Sec. 4) that\n"
      "flowed through the plan; 'speculative' are the left-incomplete\n"
      "seeds XScan/speculative-XSchedule create per (border, step);\n"
      "'r_probes'/'s_probes' are XAssembly's reachability structures.\n");
  return 0;
}
