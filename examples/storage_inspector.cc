// Storage inspector: imports a document under a chosen clustering policy
// and dumps the physical layout — per-page fill, record mix, border
// symmetry (a store fsck), and the cluster histogram.
//
//   ./build/examples/storage_inspector [policy] [scale]
//   policy: subtree | doc-order | round-robin | random   (default subtree)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "benchlib/harness.h"
#include "store/tree_page.h"

int main(int argc, char** argv) {
  using namespace navpath;
  FixtureOptions options;
  options.clustering = argc > 1 ? argv[1] : "subtree";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.02;
  options.db.import.fragmentation = 0.0;

  auto fixture = XMarkFixture::Create(scale, options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", fixture.status().ToString().c_str());
    return 1;
  }
  Database* db = (*fixture)->db();
  const ImportedDocument& doc = (*fixture)->doc();
  const std::size_t page_size = db->options().page_size;

  std::printf("policy=%s scale=%.2f: %u pages, %llu cores, %llu border "
              "pairs (%llu from chain continuations)\n\n",
              options.clustering.c_str(), scale, doc.page_count(),
              static_cast<unsigned long long>(doc.core_records),
              static_cast<unsigned long long>(doc.border_pairs),
              static_cast<unsigned long long>(doc.continuation_pairs));

  std::uint64_t cores = 0, downs = 0, ups = 0, attrs = 0, used_bytes = 0;
  std::uint64_t broken_partners = 0;
  std::map<int, int> fill_histogram;  // fill decile -> pages
  for (PageId p = doc.first_page; p <= doc.last_page; ++p) {
    auto guard = db->buffer()->Fix(p);
    guard.status().AbortIfNotOk();
    TreePage page(guard->data(), page_size);
    const std::size_t used = page_size - page.FreeBytes();
    used_bytes += used;
    ++fill_histogram[static_cast<int>(10.0 * used / page_size)];
    for (SlotId s = 0; s < page.slot_count(); ++s) {
      if (!page.IsLive(s)) continue;
      switch (page.KindOf(s)) {
        case RecordKind::kCore:
          ++cores;
          break;
        case RecordKind::kBorderDown:
          ++downs;
          break;
        case RecordKind::kBorderUp:
          ++ups;
          break;
        case RecordKind::kAttribute:
          ++attrs;
          break;
      }
      if (page.IsBorder(s)) {
        const NodeID partner = page.PartnerOf(s);
        auto partner_guard = db->buffer()->Fix(partner.page);
        partner_guard.status().AbortIfNotOk();
        TreePage partner_page(partner_guard->data(), page_size);
        if (partner.slot >= partner_page.slot_count() ||
            !partner_page.IsBorder(partner.slot) ||
            partner_page.PartnerOf(partner.slot) != (NodeID{p, s})) {
          ++broken_partners;
        }
      }
    }
  }

  std::printf(
      "records: %llu cores, %llu attributes, %llu down-borders, "
      "%llu up-borders\n",
      static_cast<unsigned long long>(cores),
      static_cast<unsigned long long>(attrs),
      static_cast<unsigned long long>(downs),
      static_cast<unsigned long long>(ups));
  std::printf("average page fill: %.1f%%\n",
              100.0 * static_cast<double>(used_bytes) /
                  (static_cast<double>(doc.page_count()) *
                   static_cast<double>(page_size)));
  std::printf("fill histogram (decile: pages): ");
  for (const auto& [decile, count] : fill_histogram) {
    std::printf("%d0%%:%d  ", decile, count);
  }
  std::printf("\nborder symmetry check (target(target(x)) == x): %s\n",
              broken_partners == 0 ? "OK"
                                   : ("BROKEN x" +
                                      std::to_string(broken_partners))
                                         .c_str());
  return broken_partners == 0 ? 0 : 1;
}
