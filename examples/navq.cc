// navq — a small interactive shell over a navpath database.
//
// Create a database:   ./build/examples/navq --generate 0.05 /tmp/x.nvph
// Query it:            ./build/examples/navq /tmp/x.nvph
//
// At the prompt, enter XPath queries (count(...) or node paths), or:
//   \plan simple|xschedule|xscan|auto    choose the physical plan
//   \stats                               document statistics
//   \quit                                exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "benchlib/harness.h"
#include "compiler/shared_scan.h"
#include "store/export.h"
#include "store/persistence.h"
#include "store/verify.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace {

using namespace navpath;

int Generate(double scale, const std::string& path) {
  auto fixture = XMarkFixture::Create(scale);
  if (!fixture.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  const Status saved =
      SaveDatabase((*fixture)->db(), (*fixture)->doc(), path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u pages, %llu elements, %llu attributes\n",
              path.c_str(), (*fixture)->doc().page_count(),
              static_cast<unsigned long long>(
                  (*fixture)->doc().core_records),
              static_cast<unsigned long long>(
                  (*fixture)->doc().attribute_records));
  return 0;
}

int Shell(const std::string& path) {
  auto loaded = LoadDatabase(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Database* db = loaded->db.get();
  const ImportedDocument& doc = loaded->doc;
  std::printf("opened %s: %u pages, %llu elements\n", path.c_str(),
              doc.page_count(),
              static_cast<unsigned long long>(doc.core_records));

  // Statistics for the optimizer: reconstruct the logical tree once.
  std::printf("building statistics for the cost-based optimizer...\n");
  DocumentStats stats;
  {
    auto text = ExportDocument(db, doc);
    text.status().AbortIfNotOk();
    auto tree = ParseXml(*text, db->tags());
    tree.status().AbortIfNotOk();
    stats = DocumentStats::Build(*tree, doc, db->options().page_size);
    db->ResetMeasurement().AbortIfNotOk();
  }

  std::string plan_mode = "auto";
  std::string line;
  std::printf("navq> ");
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      std::printf("navq> ");
      continue;
    }
    if (line == "\\quit" || line == "\\q") break;
    if (line.rfind("\\plan ", 0) == 0) {
      plan_mode = line.substr(6);
      std::printf("plan mode: %s\nnavq> ", plan_mode.c_str());
      continue;
    }
    if (line == "\\stats") {
      auto report = VerifyStore(db, doc);
      if (report.ok()) {
        std::printf("pages=%llu cores=%llu attrs=%llu borders=%llu (fsck OK)\n",
                    static_cast<unsigned long long>(report->pages),
                    static_cast<unsigned long long>(report->core_records),
                    static_cast<unsigned long long>(
                        report->attribute_records),
                    static_cast<unsigned long long>(report->border_records));
      } else {
        std::printf("fsck FAILED: %s\n", report.status().ToString().c_str());
      }
      std::printf("navq> ");
      continue;
    }

    auto query = ParseQuery(line, db->tags());
    if (!query.ok()) {
      std::printf("parse error: %s\nnavq> ",
                  query.status().ToString().c_str());
      continue;
    }
    PlanKind kind = PlanKind::kXSchedule;
    if (plan_mode == "simple") {
      kind = PlanKind::kSimple;
    } else if (plan_mode == "xscan") {
      kind = PlanKind::kXScan;
    } else if (plan_mode == "auto") {
      kind = ChoosePlanKind(stats, *query, db->options().disk_model,
                            db->costs());
    }

    ExecuteOptions exec;
    exec.plan = PaperPlan(kind);
    // Unlike the paper-series benches, the shell wants the synopsis:
    // supported count()/exists() queries answer without touching disk.
    exec.plan.use_summary = true;
    exec.collect_nodes = query->mode == PathQuery::Mode::kNodes;
    auto result = ExecuteQuery(db, doc, *query, exec);
    if (!result.ok()) {
      std::printf("error: %s\nnavq> ", result.status().ToString().c_str());
      continue;
    }
    std::printf("[%s] %llu result(s) in %.3f simulated s "
                "(%llu reads, %llu hits)\n",
                PlanKindName(kind),
                static_cast<unsigned long long>(result->count),
                result->total_seconds(),
                static_cast<unsigned long long>(result->metrics.disk_reads),
                static_cast<unsigned long long>(result->metrics.buffer_hits));
    for (std::size_t i = 0; i < result->nodes.size() && i < 10; ++i) {
      std::printf("  node %s @%llu\n",
                  result->nodes[i].id.ToString().c_str(),
                  static_cast<unsigned long long>(result->nodes[i].order));
    }
    if (result->nodes.size() > 10) {
      std::printf("  ... %zu more\n", result->nodes.size() - 10);
    }
    std::printf("navq> ");
  }
  std::printf("bye\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--generate") == 0) {
    return Generate(std::atof(argv[2]), argv[3]);
  }
  if (argc == 2) return Shell(argv[1]);
  std::fprintf(stderr,
               "usage: %s <db.nvph>\n"
               "       %s --generate <scale> <db.nvph>\n",
               argv[0], argv[0]);
  return 2;
}
