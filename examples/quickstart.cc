// Quickstart: parse an XML document, import it into the paged store, and
// evaluate an XPath query with each of the three physical plans.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "compiler/executor.h"
#include "xml/parser.h"
#include "xpath/parser.h"

int main() {
  using namespace navpath;

  // 1. A database: simulated disk + buffer manager + tag registry.
  DatabaseOptions options;
  options.page_size = 512;   // tiny pages so even this document clusters
  options.buffer_pages = 64;
  Database db(options);

  // 2. Parse a document into the in-memory DOM.
  const char* xml = R"(
    <library>
      <shelf floor="1">
        <book><title>Walden</title><year>1854</year></book>
        <book><title>Leaves of Grass</title><year>1855</year></book>
      </shelf>
      <shelf floor="2">
        <book><title>Moby-Dick</title><year>1851</year></book>
        <archive>
          <box><book><title>Typee</title><year>1846</year></book></box>
        </archive>
      </shelf>
    </library>)";
  auto tree = ParseXml(xml, db.tags());
  tree.status().AbortIfNotOk();
  std::printf("parsed %zu nodes (elements + attributes)\n", tree->size());

  // 3. Import: cluster the tree onto pages (subtree clustering).
  SubtreeClusteringPolicy policy(options.page_size - 64);
  auto doc = db.Import(*tree, &policy);
  doc.status().AbortIfNotOk();
  std::printf("imported onto %u pages (%llu border pairs)\n",
              doc->page_count(),
              static_cast<unsigned long long>(doc->border_pairs));

  // 4. Evaluate a location path with all three plan shapes.
  auto path = ParsePath("//book/title", db.tags());
  path.status().AbortIfNotOk();
  std::printf("query: %s\n", path->ToString().c_str());

  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    exec.collect_nodes = true;
    auto result = ExecutePath(&db, *doc, *path, exec);
    result.status().AbortIfNotOk();
    std::printf("\n[%s] %llu result nodes in %.6f simulated seconds:\n",
                PlanKindName(kind),
                static_cast<unsigned long long>(result->count),
                result->total_seconds());
    for (const LogicalNode& node : result->nodes) {
      std::printf("  node %s (order key %llu)\n",
                  node.id.ToString().c_str(),
                  static_cast<unsigned long long>(node.order));
    }
  }
  return 0;
}
